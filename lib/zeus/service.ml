module Engine = Cm_sim.Engine
module Net = Cm_sim.Net
module Topology = Cm_sim.Topology
module Rng = Cm_sim.Rng
module Tracer = Cm_trace.Tracer
module Propagation = Cm_trace.Propagation

type params = {
  followers : int;
  observers_per_cluster : int;
  detect_timeout : float;
  catchup_interval : float;
  msg_overhead : int;
  fanout_stagger : float;
  snapshot_threshold : int;
  dedup : bool;
  batching : bool;
  relay : bool;
  batch_window : float;
  digest_bytes : int;
  entry_overhead : int;
  delivery_log_cap : int;
}

let default_params =
  {
    followers = 4;
    observers_per_cluster = 2;
    detect_timeout = 2.0;
    catchup_interval = 0.5;
    msg_overhead = 128;
    fanout_stagger = 0.0;
    snapshot_threshold = 500;
    dedup = true;
    batching = true;
    relay = true;
    batch_window = 0.05;
    digest_bytes = 16;
    entry_overhead = 16;
    delivery_log_cap = 4096;
  }

let legacy_params =
  { default_params with dedup = false; batching = false; relay = false }

type write_rec = {
  zxid : int;
  wpath : string;
  wdata : string;
  wdigest : string;
  created : float;
  (* Trace context of the change this write carries; threaded through
     commit, batching and fan-out so every hop lands in the same trace.
     [wcommitted] remembers the commit time for the batch-wait span. *)
  mutable wctx : Tracer.ctx;
  mutable wcommitted : float;
}

(* Growable array for the commit log; zxid n lives at index n-1. *)
module Log = struct
  type t = { mutable data : write_rec array; mutable len : int }

  let create () = { data = [||]; len = 0 }
  let length t = t.len

  let append t entry =
    if t.len = Array.length t.data then begin
      let fresh = Array.make (max 16 (2 * t.len)) entry in
      Array.blit t.data 0 fresh 0 t.len;
      t.data <- fresh
    end;
    t.data.(t.len) <- entry;
    t.len <- t.len + 1

  let get t zxid =
    if zxid < 1 || zxid > t.len then invalid_arg "Log.get: zxid out of range";
    t.data.(zxid - 1)

  let truncate t len = t.len <- min t.len (max 0 len)
end

(* Bounded delivery log: keeps the most recent [cap] entries plus a
   total count, so long simulations don't grow memory per delivery. *)
module Ring = struct
  type 'a t = {
    cap : int;
    mutable buf : 'a array;
    mutable start : int;
    mutable len : int;
    mutable total : int;
  }

  let create cap = { cap = max 1 cap; buf = [||]; start = 0; len = 0; total = 0 }

  let push t x =
    if Array.length t.buf = 0 then t.buf <- Array.make t.cap x;
    if t.len < t.cap then begin
      t.buf.((t.start + t.len) mod t.cap) <- x;
      t.len <- t.len + 1
    end
    else begin
      t.buf.(t.start) <- x;
      t.start <- (t.start + 1) mod t.cap
    end;
    t.total <- t.total + 1

  let to_list t = List.init t.len (fun i -> t.buf.((t.start + i) mod t.cap))
  let total t = t.total
end

(* A fan-out unit: the commits of one batch window, coalesced to the
   latest write per path.  [blo..bhi] is the contiguous zxid range the
   batch covers (coalesced-away zxids are superseded by a later entry
   for the same path inside the same range).  [bpayload = false] means
   the receiver is expected to already hold matching bytes and only the
   digest travels. *)
type bentry = { bw : write_rec; bpayload : bool }
type batch = { blo : int; bhi : int; bentries : bentry list }

type stats = {
  leader_batches : int;
  leader_msgs : int;
  leader_bytes : int;
  relay_msgs : int;
  notify_msgs : int;
  notify_entries : int;
  fetches : int;
  fetches_skipped : int;
  payloads_deduped : int;
  writes_coalesced : int;
  snapshots : int;
  replays : int;
}

type counters = {
  mutable c_leader_batches : int;
  mutable c_leader_msgs : int;
  mutable c_leader_bytes : int;
  mutable c_relay_msgs : int;
  mutable c_notify_msgs : int;
  mutable c_notify_entries : int;
  mutable c_fetches : int;
  mutable c_fetches_skipped : int;
  mutable c_payloads_deduped : int;
  mutable c_writes_coalesced : int;
  mutable c_snapshots : int;
  mutable c_replays : int;
}

type member = { mnode : Topology.node_id; mutable mlog : int }

(* Proxy cache entry: bytes plus the content digest they hash to, so a
   digest-bearing notification can be acked without a fetch. *)
type centry = { czxid : int; cdata : string; cdigest : string }

type observer = {
  onode : Topology.node_id;
  oregion : int;
  ocluster : int;
  odata : (string, write_rec) Hashtbl.t;
  mutable olast : int;
  mutable opending : batch list;  (* out-of-order batches awaiting a gap repair *)
  mutable ocatchup_inflight : bool;
  owatchers : (string, proxy list ref) Hashtbl.t;
  onotify : (Topology.node_id, proxy * write_rec list ref) Hashtbl.t;
  mutable onotify_scheduled : bool;
}

and proxy = {
  pnode : Topology.node_id;
  pservice : t;
  mutable pobserver : observer;
  pmem : (string, centry) Hashtbl.t;   (* in-memory cache *)
  pdisk : (string, centry) Hashtbl.t;  (* on-disk cache: survives proxy crash *)
  psubs : (string, (zxid:int -> string -> unit) list ref) Hashtbl.t;
      (* callbacks stored newest-first; reversed at fire time *)
  mutable pup : bool;
  pdelivered : (string * int) Ring.t;
  mutable pweight : int;
      (* cohort weight: how many statistically identical servers this
         proxy stands for; 1 for an ordinary per-server proxy *)
  mutable pdeliv_w : int; (* effective deliveries x weight at the time *)
}

and t = {
  net : Net.t;
  prm : params;
  members : member array;
  mutable leader : int;  (* index into members *)
  log : Log.t;
  mutable committed : int;
  acks : (int, int) Hashtbl.t;
  observers : observer array;
  obs_by_region : observer array array;
  proxies : (Topology.node_id, proxy) Hashtbl.t;
  rng : Rng.t;
  write_queue : (string * string * string * Tracer.ctx) Queue.t;  (* buffered while leader down *)
  mutable election_pending : bool;
  latest : (string, write_rec) Hashtbl.t;  (* committed latest-write-per-path index *)
  mutable pending : write_rec list;        (* current batch window, newest first *)
  mutable batch_scheduled : bool;
  last_fanout_digest : (string, string) Hashtbl.t;
  racked : (int, int) Hashtbl.t;  (* region -> highest relay-acked batch bhi *)
  cnt : counters;
  mutable prop : Propagation.t option;
}

let params t = t.prm
let engine t = Net.engine t.net
let topo t = Net.topology t.net
let tracer t = Net.tracer t.net
let set_propagation t p = t.prop <- Some p
let propagation t = t.prop

let note_arrival t ?(kind = "proxy") ~node w =
  match t.prop with
  | None -> ()
  | Some p ->
      Propagation.record_arrival p ~kind ~digest:w.wdigest ~path:w.wpath ~node
        ~zxid:w.zxid ()

(* Contexts of the traced changes a wire message carries; [] in
   untraced runs (every wctx is [Tracer.none] when no tracer ever
   handed out a context). *)
let entry_ctxs bentries =
  List.filter_map
    (fun e -> if Tracer.is_traced e.bw.wctx then Some e.bw.wctx else None)
    bentries

let write_ctxs ws =
  List.filter_map (fun w -> if Tracer.is_traced w.wctx then Some w.wctx else None) ws

(* A high fan-out is serialized at the sender ([fanout_stagger]); the
   wait between enqueue and the actual send is real propagation time,
   so record it — otherwise the per-hop sums come up short of the
   measured end-to-end latency. *)
let record_stagger t ~src ~dst ~t0 bentries =
  match tracer t with
  | None -> ()
  | Some tr ->
      let now = Engine.now (engine t) in
      if now > t0 +. 1e-12 then
        List.iter
          (fun e ->
            if Tracer.is_traced e.bw.wctx then
              ignore (Tracer.span tr e.bw.wctx ~name:"zeus.stagger" ~src ~dst ~t0 ~t1:now ()))
          bentries
let leader_member t = t.members.(t.leader)
let leader_node t = (leader_member t).mnode
let quorum t = (Array.length t.members / 2) + 1

let stats t =
  {
    leader_batches = t.cnt.c_leader_batches;
    leader_msgs = t.cnt.c_leader_msgs;
    leader_bytes = t.cnt.c_leader_bytes;
    relay_msgs = t.cnt.c_relay_msgs;
    notify_msgs = t.cnt.c_notify_msgs;
    notify_entries = t.cnt.c_notify_entries;
    fetches = t.cnt.c_fetches;
    fetches_skipped = t.cnt.c_fetches_skipped;
    payloads_deduped = t.cnt.c_payloads_deduped;
    writes_coalesced = t.cnt.c_writes_coalesced;
    snapshots = t.cnt.c_snapshots;
    replays = t.cnt.c_replays;
  }

(* --- placement ----------------------------------------------------- *)

let create ?(params = default_params) net =
  let topology = Net.topology net in
  let regions = Topology.region_count topology in
  let per_cluster = Array.length (Topology.nodes_in_cluster topology ~region:0 ~cluster:0) in
  let member_count = params.followers + 1 in
  let members =
    Array.init member_count (fun i ->
        let region = i mod regions in
        let slot = i / regions in
        let nodes = Topology.nodes_in_cluster topology ~region ~cluster:0 in
        (* Members occupy the tail of cluster 0 so they do not collide
           with observers, which occupy the head of every cluster. *)
        let idx = per_cluster - 1 - slot in
        if idx < params.observers_per_cluster then
          invalid_arg "Zeus: cluster too small for members + observers";
        { mnode = nodes.(idx).Topology.id; mlog = 0 })
  in
  let observers = ref [] in
  for region = regions - 1 downto 0 do
    let clusters =
      Array.length (Topology.nodes_in_region topology ~region) / per_cluster
    in
    for cluster = clusters - 1 downto 0 do
      let nodes = Topology.nodes_in_cluster topology ~region ~cluster in
      for i = params.observers_per_cluster - 1 downto 0 do
        observers :=
          {
            onode = nodes.(i).Topology.id;
            oregion = region;
            ocluster = cluster;
            odata = Hashtbl.create 64;
            olast = 0;
            opending = [];
            ocatchup_inflight = false;
            owatchers = Hashtbl.create 64;
            onotify = Hashtbl.create 8;
            onotify_scheduled = false;
          }
          :: !observers
      done
    done
  done;
  let observers = Array.of_list !observers in
  let obs_by_region =
    Array.init regions (fun r ->
        Array.of_list
          (Array.to_list observers |> List.filter (fun obs -> obs.oregion = r)))
  in
  {
    net;
    prm = params;
    members;
    leader = 0;
    log = Log.create ();
    committed = 0;
    acks = Hashtbl.create 64;
    observers;
    obs_by_region;
    proxies = Hashtbl.create 256;
    rng = Rng.split (Engine.rng (Net.engine net));
    write_queue = Queue.create ();
    election_pending = false;
    latest = Hashtbl.create 256;
    prop = None;
    pending = [];
    batch_scheduled = false;
    last_fanout_digest = Hashtbl.create 256;
    racked = Hashtbl.create 8;
    cnt =
      {
        c_leader_batches = 0;
        c_leader_msgs = 0;
        c_leader_bytes = 0;
        c_relay_msgs = 0;
        c_notify_msgs = 0;
        c_notify_entries = 0;
        c_fetches = 0;
        c_fetches_skipped = 0;
        c_payloads_deduped = 0;
        c_writes_coalesced = 0;
        c_snapshots = 0;
        c_replays = 0;
      };
  }

(* --- wire sizes ------------------------------------------------------ *)

let entry_bytes t e =
  t.prm.entry_overhead + t.prm.digest_bytes
  + if e.bpayload then String.length e.bw.wdata else 0

let batch_bytes t batch =
  List.fold_left (fun acc e -> acc + entry_bytes t e) t.prm.msg_overhead batch.bentries

(* --- observer / proxy hot path --------------------------------------- *)

let rec observer_apply_batch t obs batch =
  let ok = ref true in
  List.iter
    (fun e ->
      if !ok then begin
        let w = e.bw in
        if w.zxid > obs.olast then begin
          let prev = Hashtbl.find_opt obs.odata w.wpath in
          let same_bytes =
            match prev with Some p -> p.wdigest = w.wdigest | None -> false
          in
          if (not e.bpayload) && not same_bytes then begin
            (* A digest-only record we cannot materialize (only possible
               after failover weirdness): stop and repair from the log. *)
            ok := false;
            obs.olast <- w.zxid - 1;
            observer_request_catchup t obs
          end
          else begin
            Hashtbl.replace obs.odata w.wpath w;
            obs.olast <- w.zxid;
            (* Notifications always flow (they are digest-sized); a
               proxy holding matching bytes acks without fetching. *)
            queue_notification t obs w
          end
        end
      end)
    batch.bentries;
  if !ok then obs.olast <- max obs.olast batch.bhi

and drain_pending t obs =
  obs.opending <- List.filter (fun b -> b.bhi > obs.olast) obs.opending;
  match List.find_opt (fun b -> b.blo <= obs.olast + 1) obs.opending with
  | Some b ->
      obs.opending <- List.filter (fun b' -> b' != b) obs.opending;
      observer_apply_batch t obs b;
      drain_pending t obs
  | None -> ()

and observer_receive_batch t obs batch =
  if batch.bhi <= obs.olast then () (* duplicate *)
  else if batch.blo <= obs.olast + 1 then begin
    observer_apply_batch t obs batch;
    drain_pending t obs
  end
  else begin
    obs.opending <- batch :: obs.opending;
    observer_request_catchup t obs
  end

(* Observer -> proxy notifications are buffered per proxy and flushed
   once the current application cascade finishes, so one batch (or one
   catch-up) reaches each proxy as a single message. *)
and queue_notification t obs w =
  match Hashtbl.find_opt obs.owatchers w.wpath with
  | None -> ()
  | Some watchers ->
      List.iter
        (fun proxy ->
          if proxy.pup then begin
            (match Hashtbl.find_opt obs.onotify proxy.pnode with
            | Some (_, entries) -> entries := w :: !entries
            | None -> Hashtbl.replace obs.onotify proxy.pnode (proxy, ref [ w ]));
            if not obs.onotify_scheduled then begin
              obs.onotify_scheduled <- true;
              ignore
                (Engine.schedule (engine t) ~delay:0.0 (fun () ->
                     flush_notifications t obs))
            end
          end)
        !watchers

and flush_notifications t obs =
  obs.onotify_scheduled <- false;
  let buffered = Hashtbl.fold (fun _ pending acc -> pending :: acc) obs.onotify [] in
  Hashtbl.reset obs.onotify;
  if Topology.is_up (topo t) obs.onode then
    List.iter
      (fun (proxy, entries) ->
        let entries = List.rev !entries in
        if t.prm.batching then begin
          let bytes =
            t.prm.msg_overhead
            + (List.length entries * (t.prm.entry_overhead + t.prm.digest_bytes))
          in
          t.cnt.c_notify_msgs <- t.cnt.c_notify_msgs + proxy.pweight;
          t.cnt.c_notify_entries <-
            t.cnt.c_notify_entries + (proxy.pweight * List.length entries);
          Net.send ~hop:"zeus.notify" ~ctxs:(write_ctxs entries)
            ~copies:proxy.pweight t.net ~src:obs.onode ~dst:proxy.pnode ~bytes
            (fun () -> proxy_handle_notifications t proxy obs entries)
        end
        else
          (* Unbatched: one notification per (path, watcher), as in the
             pre-index protocol.  With dedup on it still carries the
             digest so the proxy can skip the fetch. *)
          List.iter
            (fun w ->
              let bytes =
                t.prm.msg_overhead + if t.prm.dedup then t.prm.digest_bytes else 0
              in
              t.cnt.c_notify_msgs <- t.cnt.c_notify_msgs + proxy.pweight;
              t.cnt.c_notify_entries <- t.cnt.c_notify_entries + proxy.pweight;
              Net.send ~copies:proxy.pweight t.net ~src:obs.onode
                ~dst:proxy.pnode ~bytes (fun () ->
                  proxy_handle_notifications t proxy obs [ w ]))
            entries)
      buffered

and proxy_handle_notifications t proxy obs entries =
  if proxy.pup then begin
    let need =
      List.filter
        (fun w ->
          match Hashtbl.find_opt proxy.pmem w.wpath with
          | Some c when c.czxid >= w.zxid -> false (* stale duplicate *)
          | Some c when t.prm.dedup && c.cdigest = w.wdigest ->
              (* Matching bytes already cached: ack locally, bump the
                 version — no fetch, no callback. *)
              let c' = { c with czxid = w.zxid } in
              Hashtbl.replace proxy.pmem w.wpath c';
              Hashtbl.replace proxy.pdisk w.wpath c';
              t.cnt.c_fetches_skipped <-
                t.cnt.c_fetches_skipped + proxy.pweight;
              note_arrival t ~node:proxy.pnode w;
              (match tracer t with
              | Some tr ->
                  Tracer.event tr w.wctx ~name:"zeus.cache_ack" ~dst:proxy.pnode
                    ~tags:[ ("dedup", "hit") ] ()
              | None -> ());
              false
          | _ -> true)
        entries
    in
    if need <> [] && Topology.is_up (topo t) proxy.pnode then begin
      (* One fetch round trip for every path that actually needs bytes. *)
      t.cnt.c_fetches <- t.cnt.c_fetches + proxy.pweight;
      let req_bytes =
        t.prm.msg_overhead + (List.length need * t.prm.entry_overhead)
      in
      Net.send ~hop:"zeus.fetch_req" ~ctxs:(write_ctxs need)
        ~copies:proxy.pweight t.net ~src:proxy.pnode ~dst:obs.onode
        ~bytes:req_bytes (fun () ->
          if Topology.is_up (topo t) obs.onode then begin
            let found =
              List.filter_map (fun w -> Hashtbl.find_opt obs.odata w.wpath) need
            in
            let resp_bytes =
              List.fold_left
                (fun acc w -> acc + t.prm.entry_overhead + String.length w.wdata)
                t.prm.msg_overhead found
            in
            Net.send ~hop:"zeus.fetch" ~ctxs:(write_ctxs found)
              ~copies:proxy.pweight t.net ~src:obs.onode ~dst:proxy.pnode
              ~bytes:resp_bytes
              (fun () -> List.iter (fun w -> proxy_deliver proxy w) found)
          end)
    end
  end

and proxy_deliver proxy w =
  if proxy.pup then begin
    let t = proxy.pservice in
    let prev = Hashtbl.find_opt proxy.pmem w.wpath in
    let newer = match prev with Some c -> w.zxid > c.czxid | None -> true in
    if newer then begin
      (* Identical bytes under a newer zxid (a deduped rewrite) are a
         version bump, not an effective change: no callback. *)
      let same_bytes =
        t.prm.dedup
        && (match prev with Some c -> c.cdigest = w.wdigest | None -> false)
      in
      let c = { czxid = w.zxid; cdata = w.wdata; cdigest = w.wdigest } in
      Hashtbl.replace proxy.pmem w.wpath c;
      Hashtbl.replace proxy.pdisk w.wpath c;
      note_arrival t ~node:proxy.pnode w;
      (match tracer t with
      | Some tr ->
          Tracer.event tr w.wctx ~name:"zeus.deliver" ~dst:proxy.pnode
            ~tags:[ ("effective", string_of_bool (not same_bytes)) ]
            ()
      | None -> ());
      if not same_bytes then begin
        Ring.push proxy.pdelivered (w.wpath, w.zxid);
        proxy.pdeliv_w <- proxy.pdeliv_w + proxy.pweight;
        match Hashtbl.find_opt proxy.psubs w.wpath with
        | None -> ()
        | Some callbacks ->
            List.iter (fun f -> f ~zxid:w.zxid w.wdata) (List.rev !callbacks)
      end
    end
  end

(* --- catch-up -------------------------------------------------------- *)

and observer_request_catchup t obs =
  if (not obs.ocatchup_inflight) && Topology.is_up (topo t) obs.onode then begin
    obs.ocatchup_inflight <- true;
    let from_zxid = obs.olast + 1 in
    Net.send t.net ~src:obs.onode ~dst:(leader_node t) ~bytes:t.prm.msg_overhead (fun () ->
        if Topology.is_up (topo t) (leader_node t) then begin
          let upto = t.committed in
          let gap = upto - from_zxid + 1 in
          if gap > t.prm.snapshot_threshold then begin
            (* Snapshot catch-up: the latest committed value per path,
               read straight off the index — no log replay. *)
            t.cnt.c_snapshots <- t.cnt.c_snapshots + 1;
            let snapshot = Hashtbl.fold (fun _ w acc -> w :: acc) t.latest [] in
            let bytes =
              List.fold_left
                (fun acc w ->
                  acc + t.prm.entry_overhead + t.prm.digest_bytes
                  + String.length w.wdata)
                t.prm.msg_overhead snapshot
            in
            Net.send ~hop:"zeus.catchup" ~ctxs:(write_ctxs snapshot) t.net
              ~src:(leader_node t) ~dst:obs.onode ~bytes (fun () ->
                obs.ocatchup_inflight <- false;
                if upto > obs.olast then begin
                  obs.olast <- upto;
                  obs.opending <- List.filter (fun b -> b.bhi > upto) obs.opending;
                  List.iter
                    (fun w ->
                      match Hashtbl.find_opt obs.odata w.wpath with
                      | Some old when old.zxid >= w.zxid -> ()
                      | _ ->
                          Hashtbl.replace obs.odata w.wpath w;
                          queue_notification t obs w)
                    snapshot;
                  drain_pending t obs
                end)
          end
          else begin
            (* Small gap: replay the committed suffix as one batch. *)
            t.cnt.c_replays <- t.cnt.c_replays + 1;
            let entries = ref [] in
            for zxid = upto downto from_zxid do
              entries := { bw = Log.get t.log zxid; bpayload = true } :: !entries
            done;
            let replay = { blo = from_zxid; bhi = upto; bentries = !entries } in
            let bytes = batch_bytes t replay in
            Net.send ~hop:"zeus.catchup" ~ctxs:(entry_ctxs replay.bentries) t.net
              ~src:(leader_node t) ~dst:obs.onode ~bytes (fun () ->
                obs.ocatchup_inflight <- false;
                if upto > obs.olast then observer_receive_batch t obs replay)
          end
        end
        else obs.ocatchup_inflight <- false);
    (* Retry guard: if the reply never arrives (crashes), re-arm. *)
    ignore
      (Engine.schedule (engine t) ~delay:(t.prm.catchup_interval *. 4.0) (fun () ->
           obs.ocatchup_inflight <- false))
  end

(* --- leader fan-out --------------------------------------------------- *)

let live_observers_in_region t r =
  Array.to_list t.obs_by_region.(r)
  |> List.filter (fun obs -> Topology.is_up (topo t) obs.onode)

let leader_send_batch t ?(stagger_idx = 0) obs batch ~bytes ~on_receipt =
  let t_q = Engine.now (engine t) in
  let push () =
    if Topology.is_up (topo t) obs.onode then begin
      record_stagger t ~src:(leader_node t) ~dst:obs.onode ~t0:t_q batch.bentries;
      t.cnt.c_leader_msgs <- t.cnt.c_leader_msgs + 1;
      t.cnt.c_leader_bytes <- t.cnt.c_leader_bytes + bytes;
      Net.send ~hop:"zeus.fanout" ~ctxs:(entry_ctxs batch.bentries) t.net
        ~src:(leader_node t) ~dst:obs.onode ~bytes (fun () ->
          on_receipt ();
          observer_receive_batch t obs batch)
    end
  in
  if t.prm.fanout_stagger <= 0.0 || stagger_idx = 0 then push ()
  else
    ignore
      (Engine.schedule (engine t)
         ~delay:(t.prm.fanout_stagger *. float_of_int stagger_idx)
         push)

let fanout_direct_region t r batch ~bytes =
  List.iteri
    (fun i obs -> leader_send_batch t ~stagger_idx:i obs batch ~bytes ~on_receipt:ignore)
    (live_observers_in_region t r)

let relay_forward t relay batch ~bytes =
  (* The relay acks the leader, then re-broadcasts within its region. *)
  Net.send t.net ~src:relay.onode ~dst:(leader_node t) ~bytes:t.prm.msg_overhead
    (fun () ->
      let acked =
        match Hashtbl.find_opt t.racked relay.oregion with Some z -> z | None -> 0
      in
      Hashtbl.replace t.racked relay.oregion (max acked batch.bhi));
  let siblings =
    live_observers_in_region t relay.oregion
    |> List.filter (fun obs -> obs != relay)
  in
  let t_q = Engine.now (engine t) in
  List.iteri
    (fun i obs ->
      let forward () =
        if Topology.is_up (topo t) obs.onode then begin
          record_stagger t ~src:relay.onode ~dst:obs.onode ~t0:t_q batch.bentries;
          t.cnt.c_relay_msgs <- t.cnt.c_relay_msgs + 1;
          Net.send ~hop:"zeus.relay" ~ctxs:(entry_ctxs batch.bentries) t.net
            ~src:relay.onode ~dst:obs.onode ~bytes (fun () ->
              observer_receive_batch t obs batch)
        end
      in
      if t.prm.fanout_stagger <= 0.0 || i = 0 then forward ()
      else
        ignore
          (Engine.schedule (engine t) ~delay:(t.prm.fanout_stagger *. float_of_int i)
             forward))
    siblings

let fanout_batch t batch =
  let bytes = batch_bytes t batch in
  if t.prm.relay then
    Array.iteri
      (fun r _ ->
        match live_observers_in_region t r with
        | [] -> () (* whole region dark; restarts repair via catch-up *)
        | relay :: _ ->
            leader_send_batch t ~stagger_idx:r relay batch ~bytes
              ~on_receipt:(fun () -> relay_forward t relay batch ~bytes);
            (* Fallback: if the relay never acks (crashed in flight),
               re-send straight to every observer of the region.
               Resends are idempotent: stale batches are ignored. *)
            ignore
              (Engine.schedule (engine t) ~delay:t.prm.detect_timeout (fun () ->
                   let acked =
                     match Hashtbl.find_opt t.racked r with Some z -> z | None -> 0
                   in
                   if acked < batch.bhi && Topology.is_up (topo t) (leader_node t)
                   then fanout_direct_region t r batch ~bytes)))
      t.obs_by_region
  else
    Array.iteri
      (fun i obs -> leader_send_batch t ~stagger_idx:i obs batch ~bytes ~on_receipt:ignore)
      t.observers

(* Dedup decision: identical bytes to the last value fanned out for
   this path travel as a digest-only record. *)
let encode_entry t w =
  (match tracer t with
  | Some tr when Tracer.is_traced w.wctx ->
      w.wctx <-
        Tracer.span tr w.wctx ~name:"zeus.batch_wait"
          ~src:(leader_node t) ~dst:(leader_node t)
          ~t0:w.wcommitted ~t1:(Engine.now (engine t)) ()
  | _ -> ());
  let dup =
    t.prm.dedup
    && (match Hashtbl.find_opt t.last_fanout_digest w.wpath with
       | Some d -> d = w.wdigest
       | None -> false)
  in
  Hashtbl.replace t.last_fanout_digest w.wpath w.wdigest;
  if dup then t.cnt.c_payloads_deduped <- t.cnt.c_payloads_deduped + 1;
  { bw = w; bpayload = not dup }

let flush_pending t =
  t.batch_scheduled <- false;
  let writes = List.rev t.pending in
  t.pending <- [];
  match writes with
  | [] -> ()
  | first :: _ ->
      let blo = first.zxid in
      let bhi = List.fold_left (fun acc w -> max acc w.zxid) blo writes in
      (* Coalesce: keep only the last write per path inside the window. *)
      let last_for = Hashtbl.create 16 in
      List.iter (fun w -> Hashtbl.replace last_for w.wpath w.zxid) writes;
      let kept = List.filter (fun w -> Hashtbl.find last_for w.wpath = w.zxid) writes in
      t.cnt.c_writes_coalesced <-
        t.cnt.c_writes_coalesced + (List.length writes - List.length kept);
      t.cnt.c_leader_batches <- t.cnt.c_leader_batches + 1;
      fanout_batch t { blo; bhi; bentries = List.map (encode_entry t) kept }

let enqueue_fanout t w =
  if t.prm.batching then begin
    t.pending <- w :: t.pending;
    if not t.batch_scheduled then begin
      t.batch_scheduled <- true;
      ignore
        (Engine.schedule (engine t) ~delay:t.prm.batch_window (fun () ->
             flush_pending t))
    end
  end
  else begin
    t.cnt.c_leader_batches <- t.cnt.c_leader_batches + 1;
    fanout_batch t { blo = w.zxid; bhi = w.zxid; bentries = [ encode_entry t w ] }
  end

(* --- leader commit path ----------------------------------------------- *)

let rec advance_commit t =
  if t.committed < Log.length t.log then begin
    let next = t.committed + 1 in
    let acked = (match Hashtbl.find_opt t.acks next with Some n -> n | None -> 0) + 1 in
    if acked >= quorum t then begin
      t.committed <- next;
      Hashtbl.remove t.acks next;
      let w = Log.get t.log next in
      Hashtbl.replace t.latest w.wpath w;
      let now = Engine.now (engine t) in
      w.wcommitted <- now;
      (match t.prop with
      | Some p -> Propagation.note_commit p ~path:w.wpath ~zxid:w.zxid ~digest:w.wdigest
      | None -> ());
      (match tracer t with
      | Some tr when Tracer.is_traced w.wctx ->
          w.wctx <-
            Tracer.span tr w.wctx ~name:"zeus.commit" ~src:(leader_node t)
              ~dst:(leader_node t)
              ~tags:[ ("zxid", string_of_int w.zxid) ]
              ~t0:w.created ~t1:now ()
      | _ -> ());
      enqueue_fanout t w;
      advance_commit t
    end
  end

let replicate t w =
  Array.iteri
    (fun i member ->
      if i <> t.leader && Topology.is_up (topo t) member.mnode then
        Net.send t.net ~src:(leader_node t) ~dst:member.mnode
          ~bytes:(t.prm.msg_overhead + String.length w.wdata) (fun () ->
            (* The proposal implicitly carries the follower's missing
               prefix, so persistence is monotone in zxid. *)
            member.mlog <- max member.mlog w.zxid;
            Net.send t.net ~src:member.mnode ~dst:(leader_node t) ~bytes:t.prm.msg_overhead
              (fun () ->
                if Topology.is_up (topo t) (leader_node t) then begin
                  let count =
                    match Hashtbl.find_opt t.acks w.zxid with Some n -> n | None -> 0
                  in
                  Hashtbl.replace t.acks w.zxid (count + 1);
                  advance_commit t
                end)))
    t.members

let digest_of_data data = Digest.to_hex (Digest.string data)

let do_write t path data digest ctx =
  let now = Engine.now (engine t) in
  let w =
    {
      zxid = Log.length t.log + 1;
      wpath = path;
      wdata = data;
      wdigest = digest;
      created = now;
      wctx = ctx;
      wcommitted = now;
    }
  in
  Log.append t.log w;
  (leader_member t).mlog <- Log.length t.log;
  replicate t w

let write ?digest ?(ctx = Tracer.none) t ~path ~data =
  let digest = match digest with Some d -> d | None -> digest_of_data data in
  if Topology.is_up (topo t) (leader_node t) then do_write t path data digest ctx
  else Queue.add (path, data, digest, ctx) t.write_queue

let last_committed_zxid t = t.committed

let committed_value t path =
  match Hashtbl.find_opt t.latest path with Some w -> Some w.wdata | None -> None

(* --- failover ------------------------------------------------------- *)

let elect t =
  t.election_pending <- false;
  let best = ref None in
  Array.iteri
    (fun i member ->
      if Topology.is_up (topo t) member.mnode then
        match !best with
        | None -> best := Some i
        | Some j -> if member.mlog > t.members.(j).mlog then best := Some i)
    t.members;
  match !best with
  | None -> () (* no quorum possible; cluster stays headless *)
  | Some i ->
      t.leader <- i;
      (* Uncommitted suffix beyond the new leader's log is lost. *)
      assert (t.committed <= t.members.(i).mlog);
      Log.truncate t.log t.members.(i).mlog;
      Hashtbl.reset t.acks;
      (* Un-acked but persisted entries must be re-replicated. *)
      let rec repropose zxid =
        if zxid <= Log.length t.log then begin
          if zxid > t.committed then replicate t (Log.get t.log zxid);
          repropose (zxid + 1)
        end
      in
      repropose (t.committed + 1);
      let queued = Queue.create () in
      Queue.transfer t.write_queue queued;
      Queue.iter (fun (path, data, digest, ctx) -> do_write t path data digest ctx) queued

let crash_leader t =
  Topology.crash (topo t) (leader_node t);
  if not t.election_pending then begin
    t.election_pending <- true;
    ignore (Engine.schedule (engine t) ~delay:t.prm.detect_timeout (fun () -> elect t))
  end

(* --- observer failure injection ------------------------------------ *)

let find_observer t ~region ~cluster i =
  let matching =
    Array.to_list t.observers
    |> List.filter (fun obs -> obs.oregion = region && obs.ocluster = cluster)
  in
  match List.nth_opt matching i with
  | Some obs -> obs
  | None -> invalid_arg "Zeus: no such observer"

let crash_observer t ~region ~cluster i =
  Topology.crash (topo t) (find_observer t ~region ~cluster i).onode

let restart_observer t ~region ~cluster i =
  let obs = find_observer t ~region ~cluster i in
  Topology.restart (topo t) obs.onode;
  observer_request_catchup t obs

let observer_last_zxid t ~region ~cluster i = (find_observer t ~region ~cluster i).olast
let observer_count t = Array.length t.observers

let observer_data t ~region ~cluster i =
  let obs = find_observer t ~region ~cluster i in
  Hashtbl.fold (fun path w acc -> (path, (w.zxid, w.wdata)) :: acc) obs.odata []
  |> List.sort compare

(* --- proxy side ----------------------------------------------------- *)

let pick_observer t node =
  let region, cluster = Topology.cluster_of (topo t) node in
  let local =
    Array.to_list t.observers
    |> List.filter (fun obs ->
           obs.oregion = region && obs.ocluster = cluster
           && Topology.is_up (topo t) obs.onode)
  in
  match local with
  | [] ->
      (* Whole cluster's observers down: fall back to any live one. *)
      let any =
        Array.to_list t.observers
        |> List.filter (fun obs -> Topology.is_up (topo t) obs.onode)
      in
      (match any with
      | [] -> t.observers.(0) (* all down; keep a reference, reads hit disk *)
      | candidates -> List.nth candidates (Rng.int t.rng (List.length candidates)))
  | candidates -> List.nth candidates (Rng.int t.rng (List.length candidates))

let register_watch t proxy path =
  let obs = proxy.pobserver in
  Net.send ~copies:proxy.pweight t.net ~src:proxy.pnode ~dst:obs.onode
    ~bytes:t.prm.msg_overhead (fun () ->
      if Topology.is_up (topo t) obs.onode then begin
        (match Hashtbl.find_opt obs.owatchers path with
        | Some watchers -> if not (List.memq proxy !watchers) then watchers := proxy :: !watchers
        | None -> Hashtbl.replace obs.owatchers path (ref [ proxy ]));
        (* Initial read: push the current value if any. *)
        match Hashtbl.find_opt obs.odata path with
        | Some w ->
            Net.send ~hop:"zeus.initial_push" ~ctxs:(write_ctxs [ w ])
              ~copies:proxy.pweight t.net ~src:obs.onode ~dst:proxy.pnode
              ~bytes:(t.prm.msg_overhead + String.length w.wdata) (fun () ->
                proxy_deliver proxy w)
        | None -> ()
      end)

let rec proxy_health_loop t proxy =
  ignore
    (Engine.schedule (engine t) ~delay:(t.prm.catchup_interval *. 2.0) (fun () ->
         if proxy.pup then begin
           if not (Topology.is_up (topo t) proxy.pobserver.onode) then begin
             proxy.pobserver <- pick_observer t proxy.pnode;
             Hashtbl.iter (fun path _ -> register_watch t proxy path) proxy.psubs
           end;
           proxy_health_loop t proxy
         end))

let proxy_on ?(weight = 1) t node =
  match Hashtbl.find_opt t.proxies node with
  | Some proxy -> proxy
  | None ->
      let proxy =
        {
          pnode = node;
          pservice = t;
          pobserver = t.observers.(0);
          pmem = Hashtbl.create 16;
          pdisk = Hashtbl.create 16;
          psubs = Hashtbl.create 16;
          pup = true;
          pdelivered = Ring.create t.prm.delivery_log_cap;
          pweight = weight;
          pdeliv_w = 0;
        }
      in
      proxy.pobserver <- pick_observer t node;
      Hashtbl.replace t.proxies node proxy;
      proxy_health_loop t proxy;
      proxy

let subscribe proxy ~path callback =
  let t = proxy.pservice in
  (match t.prop with
  | Some p -> Propagation.register_target p ~kind:"proxy" ~path ~node:proxy.pnode ()
  | None -> ());
  (match Hashtbl.find_opt proxy.psubs path with
  | Some callbacks -> callbacks := callback :: !callbacks
  | None ->
      Hashtbl.replace proxy.psubs path (ref [ callback ]);
      register_watch t proxy path);
  (* Replay the cached value immediately if we already have one. *)
  match Hashtbl.find_opt proxy.pmem path with
  | Some c -> callback ~zxid:c.czxid c.cdata
  | None -> ()

let proxy_get proxy path =
  if proxy.pup then
    match Hashtbl.find_opt proxy.pmem path with
    | Some c -> Some c.cdata
    | None -> (
        match Hashtbl.find_opt proxy.pdisk path with
        | Some c -> Some c.cdata
        | None -> None)
  else
    (* Proxy process dead: the application reads the on-disk cache. *)
    match Hashtbl.find_opt proxy.pdisk path with
    | Some c -> Some c.cdata
    | None -> None

let proxy_get_versioned proxy path =
  let cache = if proxy.pup then proxy.pmem else proxy.pdisk in
  match Hashtbl.find_opt cache path with
  | Some c -> Some (c.czxid, c.cdata)
  | None -> (
      match Hashtbl.find_opt proxy.pdisk path with
      | Some c -> Some (c.czxid, c.cdata)
      | None -> None)

let proxy_cached_zxid proxy path =
  match Hashtbl.find_opt proxy.pmem path with
  | Some c -> Some c.czxid
  | None -> None

let crash_proxy proxy =
  proxy.pup <- false;
  Hashtbl.reset proxy.pmem

let restart_proxy proxy =
  let t = proxy.pservice in
  proxy.pup <- true;
  (* Warm the memory cache from disk, reconnect, resubscribe. *)
  Hashtbl.iter (fun path entry -> Hashtbl.replace proxy.pmem path entry) proxy.pdisk;
  proxy.pobserver <- pick_observer t proxy.pnode;
  Hashtbl.iter (fun path _ -> register_watch t proxy path) proxy.psubs;
  proxy_health_loop t proxy

let proxy_count t = Hashtbl.length t.proxies
let delivery_log proxy = Ring.to_list proxy.pdelivered
let deliveries_total proxy = Ring.total proxy.pdelivered
let deliveries_weighted proxy = proxy.pdeliv_w
let proxy_weight proxy = proxy.pweight

let set_proxy_weight proxy w =
  assert (w >= 0);
  proxy.pweight <- w

(* --- hooks for the pull-model ablation ------------------------------ *)

let net_of t = t.net
let msg_overhead t = t.prm.msg_overhead
let nearest_observer_node t node = (pick_observer t node).onode

let observer_value_at t node path =
  let found = ref None in
  Array.iter (fun obs -> if obs.onode = node then found := Some obs) t.observers;
  match !found with
  | None -> None
  | Some obs -> (
      match Hashtbl.find_opt obs.odata path with
      | Some w -> Some (w.zxid, w.wdata)
      | None -> None)
