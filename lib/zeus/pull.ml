module Engine = Cm_sim.Engine
module Net = Cm_sim.Net
module Topology = Cm_sim.Topology

(* Bytes to name one config in a poll request: the client must
   enumerate everything it needs on every poll. *)
let per_path_request_bytes = 48

type t = {
  service : Service.t;
  node : Topology.node_id;
  poll_interval : float;
  cache : (string, int * string) Hashtbl.t;
  subs : (string, (zxid:int -> string -> unit) list ref) Hashtbl.t;
  mutable npolls : int;
  mutable nempty : int;
  mutable running : bool;
}

let paths t = Hashtbl.fold (fun path _ acc -> path :: acc) t.subs []

let engine t = Net.engine (Service.net_of t.service)

let deliver t path zxid data =
  let newer =
    match Hashtbl.find_opt t.cache path with
    | Some (cached, _) -> zxid > cached
    | None -> true
  in
  if newer then begin
    Hashtbl.replace t.cache path (zxid, data);
    match Hashtbl.find_opt t.subs path with
    | None -> ()
    | Some callbacks -> List.iter (fun f -> f ~zxid data) (List.rev !callbacks)
  end

let rec poll_loop t =
  if t.running then
    ignore
      (Engine.schedule (engine t) ~delay:t.poll_interval (fun () ->
           if t.running then begin
             let wanted = paths t in
             if wanted <> [] then begin
               t.npolls <- t.npolls + 1;
               let request_bytes =
                 Service.msg_overhead t.service
                 + (per_path_request_bytes * List.length wanted)
               in
               let observer_node = Service.nearest_observer_node t.service t.node in
               let net = Service.net_of t.service in
               Net.send net ~src:t.node ~dst:observer_node ~bytes:request_bytes (fun () ->
                   (* Observer answers with configs newer than the
                      client's cached versions. *)
                   let fresh =
                     List.filter_map
                       (fun path ->
                         match Service.observer_value_at t.service observer_node path with
                         | Some (zxid, data) -> (
                             match Hashtbl.find_opt t.cache path with
                             | Some (cached, _) when cached >= zxid -> None
                             | Some _ | None -> Some (path, zxid, data))
                         | None -> None)
                       wanted
                   in
                   let reply_bytes =
                     List.fold_left
                       (fun acc (_, _, data) -> acc + String.length data)
                       (Service.msg_overhead t.service)
                       fresh
                   in
                   if fresh = [] then t.nempty <- t.nempty + 1;
                   Net.send net ~src:observer_node ~dst:t.node ~bytes:reply_bytes (fun () ->
                       List.iter (fun (path, zxid, data) -> deliver t path zxid data) fresh))
             end;
             poll_loop t
           end))

let create service ~node ~poll_interval =
  let t =
    {
      service;
      node;
      poll_interval;
      cache = Hashtbl.create 16;
      subs = Hashtbl.create 16;
      npolls = 0;
      nempty = 0;
      running = true;
    }
  in
  poll_loop t;
  t

(* Callbacks are stored newest-first (constant-time registration) and
   reversed at fire time to preserve registration order. *)
let subscribe t ~path callback =
  match Hashtbl.find_opt t.subs path with
  | Some callbacks -> callbacks := callback :: !callbacks
  | None -> Hashtbl.replace t.subs path (ref [ callback ])

let get t path =
  match Hashtbl.find_opt t.cache path with Some (_, data) -> Some data | None -> None

let polls t = t.npolls
let empty_polls t = t.nempty
let stop t = t.running <- false
