(** Application-facing Configerator client library (§3.4).

    An application links this in, asks the local proxy for its
    configs, and gets watch-driven updates.  Reads survive total
    Configerator failure as long as the config is in the proxy's
    on-disk cache. *)

type t

val create : Cm_zeus.Service.t -> node:Cm_sim.Topology.node_id -> t
(** One client per application instance; shares the node's proxy. *)

val node : t -> Cm_sim.Topology.node_id

val want : t -> string -> unit
(** Declare interest in a config: the proxy fetches it and keeps a
    watch ("on startup, the application requests the proxy to fetch
    its config", §3.4).  Reads also register interest implicitly, but
    the fetch is asynchronous — declare interest at startup to have
    values ready. *)

val get_raw : t -> string -> string option
(** Raw bytes of a config artifact.  [None] until the proxy has
    fetched it (first read registers interest). *)

val get_json : t -> string -> Cm_json.Value.t option
(** Parsed JSON; [None] when absent or unparseable.  The decoded value
    is memoized per (path, zxid): re-reading an unchanged config is a
    hashtable hit, not a re-parse (§3.4's "parse once" proxy design). *)

val get_typed :
  t ->
  schema:Cm_thrift.Schema.t ->
  type_name:string ->
  string ->
  (Cm_thrift.Value.t, string) result
(** Decode a config under the application's compiled-in schema — the
    place where §6.4's "old code reads new config" incidents surface,
    as decode errors rather than crashes.  Memoized per
    (path, type_name, zxid); a client is expected to use one schema
    per type name (it is compiled in). *)

val decodes : t -> int
(** Parse/decode operations actually performed. *)

val memo_hits : t -> int
(** Reads served from the parse-once memo instead of re-decoding. *)

val subscribe : t -> string -> (Cm_json.Value.t -> unit) -> unit
(** Callback fires on every update of the config, in order, including
    the initial value once available. *)

val subscribe_raw : t -> string -> (string -> unit) -> unit
