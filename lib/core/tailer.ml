module Engine = Cm_sim.Engine
module Tracer = Cm_trace.Tracer

type t = {
  poll_interval : float;
  is_artifact : string -> bool;
  engine : Engine.t;
  repo : Cm_vcs.Repo.t;
  zeus : Cm_zeus.Service.t;
  mutable last_seen : Cm_vcs.Store.oid option;
  mutable running : bool;
  mutable nwrites : int;
  mutable nsuppressed : int;
  (* Trace contexts of landed-but-not-yet-distributed artifacts: the
     pipeline parks the change's context here at commit time; the next
     poll picks it up, records the poll-wait span and threads the
     context into the Zeus write. *)
  pending_ctx : (string, Tracer.ctx * float) Hashtbl.t;
}

let default_is_artifact path =
  match Source_tree.kind_of_path path with
  | Source_tree.Raw -> true
  | Source_tree.Cconf | Source_tree.Cinc | Source_tree.Thrift | Source_tree.Cvalidator ->
      false

let create ?(poll_interval = 5.0) ?(is_artifact = default_is_artifact) engine repo zeus =
  {
    poll_interval;
    is_artifact;
    engine;
    repo;
    zeus;
    last_seen = None;
    running = false;
    nwrites = 0;
    nsuppressed = 0;
    pending_ctx = Hashtbl.create 16;
  }

let note_ctx t ~path ctx =
  if Tracer.is_traced ctx && t.is_artifact path then
    Hashtbl.replace t.pending_ctx path (ctx, Engine.now t.engine)

let take_ctx t path =
  match Hashtbl.find_opt t.pending_ctx path with
  | None -> Tracer.none
  | Some (ctx, since) ->
      Hashtbl.remove t.pending_ctx path;
      (match Cm_sim.Net.tracer (Cm_zeus.Service.net_of t.zeus) with
      | Some tr ->
          Tracer.span tr ctx ~name:"tailer.poll_wait" ~t0:since
            ~t1:(Engine.now t.engine) ()
      | None -> ctx)

let poll_once t =
  let head = Cm_vcs.Repo.head t.repo in
  if head <> t.last_seen then begin
    (match head with
    | None -> ()
    | Some head_oid ->
        (* O(changed) on the Merkle backend: changed_since replays
           commit change records and changed_between walks only the
           differing subtrees, so a poll over a huge repo costs what
           actually moved. *)
        let touched = Cm_vcs.Repo.changed_since t.repo ~base:t.last_seen in
        (* Content-level endpoint diff: a path whose bytes ended up
           back where they started since the last poll (e.g. an
           emergency rollback landing between polls) is already what
           the fleet holds — issuing the write would only churn Zeus
           watches. *)
        let dirty = Hashtbl.create 32 in
        List.iter
          (fun path -> Hashtbl.replace dirty path ())
          (Cm_vcs.Repo.changed_between t.repo ~base:t.last_seen ~head:head_oid);
        List.iter
          (fun path ->
            if t.is_artifact path then
              if not (Hashtbl.mem dirty path) then
                t.nsuppressed <- t.nsuppressed + 1
              else
                match Cm_vcs.Repo.read_file t.repo path with
                | Some data ->
                    t.nwrites <- t.nwrites + 1;
                    (* The artifact digest rides along so Zeus can dedup
                       byte-identical rewrites on the wire. *)
                    Cm_zeus.Service.write t.zeus
                      ~digest:(Compiler.digest_of_text data)
                      ~ctx:(take_ctx t path) ~path ~data
                | None -> () (* deleted; distribution of deletions is a no-op *))
          touched);
    t.last_seen <- head
  end

let rec loop t =
  if t.running then
    ignore
      (Engine.schedule t.engine ~delay:t.poll_interval (fun () ->
           if t.running then begin
             poll_once t;
             loop t
           end))

let start t =
  if not t.running then begin
    t.running <- true;
    loop t
  end

let stop t = t.running <- false
let writes_issued t = t.nwrites
let writes_suppressed t = t.nsuppressed
let force_poll t = poll_once t
