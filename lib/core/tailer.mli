(** The Git Tailer (Figure 3): continuously extracts config changes
    from the repository and writes them to Zeus for distribution.

    The tailer polls the repository (default every 5 s, matching the
    ~5 s tail latency the paper reports in §6.3); for every artifact
    path changed since the last seen commit it issues a Zeus write
    with the file's new content. *)

type t

val create :
  ?poll_interval:float ->
  ?is_artifact:(string -> bool) ->
  Cm_sim.Engine.t ->
  Cm_vcs.Repo.t ->
  Cm_zeus.Service.t ->
  t
(** [is_artifact] selects which repository paths are distributed
    (default: everything that is not CSL/Thrift source — i.e. compiled
    JSON artifacts and raw configs). *)

val start : t -> unit
(** Begins the poll loop. *)

val stop : t -> unit

val writes_issued : t -> int
(** Real Zeus writes only — no-op updates never reach this counter. *)

val writes_suppressed : t -> int
(** Artifact paths that commits touched but whose bytes were unchanged
    from the last distributed version (e.g. a rollback that restored
    the previous content between two polls): the write is skipped. *)

val force_poll : t -> unit
(** One immediate poll (used by tests). *)

val note_ctx : t -> path:string -> Cm_trace.Tracer.ctx -> unit
(** Parks a change's trace context against an artifact path that just
    landed in the repository; the poll that distributes the path
    records a [tailer.poll_wait] span and hands the context to the
    Zeus write.  No-op for untraced contexts and non-artifact paths. *)
