type diff_id = int

type state =
  | Pending
  | Accepted of string
  | Rejected of string * string

type diff = {
  id : diff_id;
  author : string;
  title : string;
  base : Cm_vcs.Store.oid option;
  changes : Cm_vcs.Repo.change list;
  mutable state : state;
  mutable test_results : Defense.verdict list;
}

type t = { diffs : (diff_id, diff) Hashtbl.t; mutable next_id : diff_id }

let create () = { diffs = Hashtbl.create 32; next_id = 1 }

let submit t ~author ~title ~base changes =
  let id = t.next_id in
  t.next_id <- id + 1;
  Hashtbl.replace t.diffs id
    { id; author; title; base; changes; state = Pending; test_results = [] };
  id

let get t id = Hashtbl.find_opt t.diffs id

let post_verdict t id verdict =
  match get t id with
  | Some diff -> diff.test_results <- diff.test_results @ [ verdict ]
  | None -> ()

let post_test_result t id ~name ~passed ~detail =
  let verdict =
    if passed then Defense.pass ~stage:"review" ~rule:name detail
    else Defense.fail ~stage:"review" ~rule:name detail
  in
  post_verdict t id verdict

let approve t id ~reviewer =
  match get t id with
  | None -> Error "no such diff"
  | Some diff -> (
      if String.equal reviewer diff.author then Error "self-review is not allowed"
      else
        match diff.state with
        | Pending ->
            diff.state <- Accepted reviewer;
            Ok ()
        | Accepted _ -> Error "already accepted"
        | Rejected _ -> Error "already rejected")

let reject t id ~reviewer ~reason =
  match get t id with
  | None -> Error "no such diff"
  | Some diff -> (
      match diff.state with
      | Pending ->
          diff.state <- Rejected (reviewer, reason);
          Ok ()
      | Accepted _ -> Error "already accepted"
      | Rejected _ -> Error "already rejected")

let pending t =
  Hashtbl.fold
    (fun _ diff acc -> match diff.state with Pending -> diff :: acc | _ -> acc)
    t.diffs []
  |> List.sort (fun a b -> Int.compare a.id b.id)

let count t = Hashtbl.length t.diffs
