(** The Configerator compiler (§3.1, Figure 2).

    Compiling a [*.cconf] source:
    + evaluate the CSL program (resolving [import]/[import_thrift]
      through the source tree),
    + take its exported object,
    + check it against the Thrift schema (normalizing defaults),
    + run every validator registered for its type, including
      [<Type>.thrift-cvalidator] sources discovered in the tree,
    + serialize to canonical JSON.

    Raw configs (non-CSL files) pass through unchanged, except that
    files ending in [.json] must parse.

    Compilation is {e incremental}: the compiler owns a {!Depgraph}
    over its tree and memoizes artifacts by the content hash of each
    config's transitive source closure.  {!compile_affected} is the
    per-change entry point — it recompiles only the changed cone, and
    within the cone only configs whose closure bytes actually changed;
    everything else is served from the {!Cache}, which can be shared
    between compilers (e.g. the live tree and per-proposal clones). *)

type compiled = {
  config_path : string;       (** source path, e.g. "jobs/cache_job.cconf" *)
  artifact_path : string;     (** output path, e.g. "jobs/cache_job.json" *)
  json : Cm_json.Value.t;
  json_text : string;         (** compact serialization, the distributed bytes *)
  digest : string;            (** content hash of [json_text] — what the tailer
                                  and CI use to recognize unchanged artifacts *)
  type_name : string option;  (** struct type of the export, if typed *)
  schema : Cm_thrift.Schema.t;
      (** union of the imported Thrift schemas (empty for raw configs);
          what a UI needs to edit the object field-by-field *)
  schema_hash : string option;
  deps : string list;         (** every import touched, source-tree paths *)
}

type error = {
  at : string;     (** source path *)
  stage : stage;
  message : string;
}

and stage = Parse | Eval | Schema | Validation | Serialize

val pp_error : Format.formatter -> error -> unit
val stage_name : stage -> string

val verdict_of_error : error -> Defense.verdict
(** The unified defense-stage view of a compile error: stage
    ["validator"] for {!Validation} failures (the paper's first
    defense layer), ["compile"] otherwise. *)

val digest_of_text : string -> string
(** The artifact digest function (hex); [compiled.digest =
    digest_of_text compiled.json_text]. *)

(** Content-addressed artifact memo table.  Keys are closure hashes,
    so a table can be shared between compilers over different trees:
    identical closure bytes imply an identical artifact.

    The table is domain-safe: hash-sharded immutable maps behind
    atomics — lookups are wait-free (one atomic load per shard), a
    publish is a CAS retry loop, so a pool of compiling domains (and
    any concurrent reader, e.g. the live tailer) never block each
    other.  With [byte_budget] set the cache is bounded by clock-LRU
    eviction at publish time; without it, it grows without bound as
    before. *)
module Cache : sig
  type t

  val create : ?byte_budget:int -> ?shards:int -> unit -> t
  (** [byte_budget] bounds the resident artifact bytes (approximately:
      the budget is split evenly across [shards], 16 by default, and
      enforced per shard).  Unset means unbounded. *)

  val hits : t -> int
  val misses : t -> int
  val size : t -> int
  (** Number of distinct artifacts retained. *)

  val resident_bytes : t -> int
  (** Bytes currently charged against the budget. *)

  val evictions : t -> int
  (** Entries dropped by the clock-LRU sweep since creation. *)

  val byte_budget : t -> int option
  val shard_count : t -> int

  val compile_seconds : t -> Cm_sim.Metrics.Histogram.t
  (** Per-miss compile latency (CPU seconds); hits cost no samples. *)

  (** {2 Direct access (tests and custom schedulers)} *)

  val find : t -> string -> compiled option
  (** Wait-free lookup by closure hash; stamps the entry's clock. *)

  val store : t -> string -> compiled -> unit
  (** CAS-publish an artifact under its closure hash, evicting to the
      byte budget.  Losing a race to an identical key is a no-op. *)

  (** Per-domain counter block: workers on a pool accumulate hits,
      misses and compile-latency samples privately and the caller
      merges them into the shared counters at the join point. *)
  type local = {
    mutable lhits : int;
    mutable lmisses : int;
    mutable lsamples : float list;
  }

  val local : unit -> local
  val merge : t -> local -> unit
end

type t

val create :
  ?validators:Validator.t ->
  ?cache:Cache.t ->
  ?depgraph:Depgraph.t ->
  Source_tree.t ->
  t
(** [depgraph], when given, must already index [tree] (used by clones
    that {!Depgraph.copy} a live index instead of re-scanning);
    otherwise a fresh scan is performed.  [cache] defaults to a fresh
    empty table. *)

val validators : t -> Validator.t
val source_tree : t -> Source_tree.t
val depgraph : t -> Depgraph.t
val cache : t -> Cache.t

val compile : t -> string -> (compiled, error) result
(** Compile one [*.cconf] or raw config by source path — always
    re-evaluates; no memoization. *)

val compile_all : ?pool:Cm_parallel.Pool.t -> t -> (compiled list * error list)
(** Compile every config in the tree ([*.cconf] + raw), through the
    memo table.  With [pool], configs fan out across its domains in
    dependency level order ({!Depgraph.levels}); the result — artifact
    list, error list and ordering, cache counter totals — is identical
    to the sequential run's. *)

val note_changed : t -> string list -> unit
(** Re-index the given paths in the compiler's dependency graph after
    their tree content changed ({!Depgraph.update_file} per path). *)

val compile_affected :
  ?pool:Cm_parallel.Pool.t -> t -> changed:string list -> (compiled list * error list)
(** The incremental entry point: re-index [changed], compute the
    affected cone ({!Depgraph.affected_configs}), and compile it
    through the memo table.  Configs outside the cone are untouched;
    configs inside the cone whose transitive closure bytes are
    unchanged are cache hits.  With [pool], the cone compiles in
    parallel level order with deterministic, sequential-identical
    output (see {!compile_all}). *)

val closure_hash : t -> string -> string
(** Content hash of a config's transitive source closure (its own
    source, its import closure, and all validator sources) — the memo
    key. *)

val artifact_path_of : string -> string
(** ["a/b.cconf" -> "a/b.json"]; raw paths map to themselves. *)
