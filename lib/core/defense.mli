(** The unified defense-stage result API (§3.3, §6.4 defense in depth).

    Every layer of the pipeline that can bounce a change — compiler
    validators, the {!Cm_verify} correctness plane, Sandcastle CI,
    code review, the automated canary, and the landing strip — reports
    through the same structured {!verdict}: which stage spoke, which
    rule fired, which path is at fault, what happened, and (when a
    stage can compute one) a Tortoise-style minimal {!repair}
    suggestion.  {!Pipeline.outcome} collapses to
    [Landed | Rejected of rejection] on top of this type, replacing
    the per-stage [Rejected_*] variants and their ad-hoc payloads. *)

type repair = {
  origin : string;
      (** where the suggestion came from: ["validator-range"] (nearest
          passing value inside a declared invariant) or
          ["last-landed"] (previous committed value via
          [Repo.path_history]) *)
  suggestion : string;  (** replacement value / artifact text *)
  note : string;        (** human-readable rationale *)
}

type verdict = {
  stage : string;  (** producing defense layer, e.g. ["validator"],
                       ["verify"], ["sandcastle"], ["review"],
                       ["canary"], ["conflict"] *)
  rule : string;   (** rule / check id within the stage *)
  path : string;   (** offending source or artifact path; [""] when
                       the verdict is not about one path *)
  passed : bool;
  detail : string;
  repair : repair option;  (** only ever on failing verdicts *)
}

(** Raw outcome of one check body before it is stamped with its stage
    and rule — replaces the anonymous [(passed, detail)] tuples the
    defense layers used to traffic in. *)
type finding = { ok : bool; at : string; note : string }

(** A stage bouncing a change: the stage name plus every verdict the
    stage produced (passing ones included, for context). *)
type rejection = { failed_stage : string; verdicts : verdict list }

val repair : origin:string -> suggestion:string -> string -> repair
val finding : ?at:string -> ok:bool -> string -> finding
val pass : stage:string -> rule:string -> ?path:string -> string -> verdict
val fail : stage:string -> rule:string -> ?path:string -> ?repair:repair -> string -> verdict

val of_finding : stage:string -> rule:string -> finding -> verdict

val all_passed : verdict list -> bool
val failures : verdict list -> verdict list
val reject : stage:string -> verdict list -> rejection

val summary : rejection -> string
(** One line: the stage plus the first failing verdict. *)

val pp_verdict : Format.formatter -> verdict -> unit
val pp_rejection : Format.formatter -> rejection -> unit

val verdict_to_json : verdict -> Cm_json.Value.t
(** For surfacing verdicts through tooling (CLI, bench artifacts). *)
