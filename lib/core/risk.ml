type signal = {
  signal_name : string;
  weight : float;
  detail : string;
}

type assessment = {
  score : float;
  signals : signal list;
  level : level;
}

and level = Low | Elevated | High

let level_name = function Low -> "low" | Elevated -> "elevated" | High -> "HIGH"

type history = {
  write_days : float list;
  authors : string list;
  fanout : int;
}

type params = {
  dormancy_days : float;
  big_change_lines : int;
  many_authors : int;
  high_fanout : int;
  elevated_threshold : float;
  high_threshold : float;
}

let default_params =
  {
    dormancy_days = 180.0;
    big_change_lines = 100;
    many_authors = 10;
    high_fanout = 10;
    elevated_threshold = 1.0;
    high_threshold = 2.0;
  }

let history_of_repo repo dep ~path ~now =
  (* Index-backed: O(commits touching path), not O(commits x paths). *)
  let touching = Cm_vcs.Repo.path_history repo path in
  let write_days =
    List.sort Float.compare
      (List.map (fun (_, c) -> c.Cm_vcs.Store.timestamp /. 86400.0) touching)
  in
  let authors =
    List.sort_uniq String.compare (List.map (fun (_, c) -> c.Cm_vcs.Store.author) touching)
  in
  ignore now;
  { write_days; authors; fanout = List.length (Depgraph.dependents dep path) }

let assess ?(params = default_params) ~history ~now ~old_text ~new_text ~author () =
  let signals = ref [] in
  let add signal_name weight detail = signals := { signal_name; weight; detail } :: !signals in
  (match List.rev history.write_days with
  | [] -> add "new-config" 0.25 "no history yet"
  | last :: _ ->
      let idle = now -. last in
      if idle >= params.dormancy_days then
        add "dormant-awakened" 1.0
          (Printf.sprintf "untouched for %.0f days (threshold %.0f)" idle
             params.dormancy_days));
  (match old_text with
  | Some old_text ->
      let changed = Cm_vcs.Diff.line_changes old_text new_text in
      if changed > params.big_change_lines then
        add "large-change" 0.75
          (Printf.sprintf "%d line changes (threshold %d)" changed params.big_change_lines);
      let old_len = max 1 (String.length old_text) in
      let new_len = max 1 (String.length new_text) in
      if new_len > 4 * old_len || old_len > 4 * new_len then
        add "unusual-size" 0.75
          (Printf.sprintf "size %dB -> %dB" (String.length old_text)
             (String.length new_text))
  | None -> ());
  if List.length history.authors >= params.many_authors then
    add "highly-shared" 0.75
      (Printf.sprintf "%d distinct past authors" (List.length history.authors));
  if history.write_days <> [] && not (List.mem author history.authors) then
    add "first-time-author" 0.5 (author ^ " has never edited this config");
  if history.fanout >= params.high_fanout then
    add "high-fanout" 0.75
      (Printf.sprintf "%d configs recompile when this changes" history.fanout);
  let signals = List.rev !signals in
  let score = List.fold_left (fun acc s -> acc +. s.weight) 0.0 signals in
  let level =
    if score >= params.high_threshold then High
    else if score >= params.elevated_threshold then Elevated
    else Low
  in
  { score; signals; level }

let pp ppf { score; signals; level } =
  Format.fprintf ppf "risk %s (%.2f)" (level_name level) score;
  List.iter
    (fun s -> Format.fprintf ppf "@\n  - %s: %s" s.signal_name s.detail)
    signals
