type compiled = {
  config_path : string;
  artifact_path : string;
  json : Cm_json.Value.t;
  json_text : string;
  digest : string;
  type_name : string option;
  schema : Cm_thrift.Schema.t;
  schema_hash : string option;
  deps : string list;
}

let digest_of_text text = Digest.to_hex (Digest.string text)

type error = { at : string; stage : stage; message : string }

and stage = Parse | Eval | Schema | Validation | Serialize

let stage_name = function
  | Parse -> "parse"
  | Eval -> "eval"
  | Schema -> "schema"
  | Validation -> "validation"
  | Serialize -> "serialize"

let pp_error ppf { at; stage; message } =
  Format.fprintf ppf "%s: [%s] %s" at (stage_name stage) message

(* Validation failures are the validator defense layer speaking; every
   other compile error is the compiler itself. *)
let verdict_of_error { at; stage; message } =
  let layer = match stage with Validation -> "validator" | _ -> "compile" in
  Defense.fail ~stage:layer ~rule:(stage_name stage) ~path:at message

(* Domain-safe, content-addressed artifact memo cache.

   The keyspace is hash-sharded; each shard is an immutable map
   behind one [Atomic.t] (the PR-8 snapshot-swap recipe from the
   Gatekeeper/Laser check plane, applied to the write path).  The hit
   path is wait-free — one atomic load plus a persistent-map lookup;
   publishing a miss is a CAS loop against the freshest shard root,
   so compiling domains never block each other and never block a
   concurrent reader (e.g. the live tailer hitting the cache while a
   proposal compiles on the pool).

   The cache is bounded: an optional byte budget, split evenly across
   shards, is enforced at publish time by clock-style LRU eviction —
   every hit stamps its entry from a global tick counter, and a
   publish that overflows its shard drops least-recently-stamped
   entries (never the one being added) until the shard fits.  A
   long-lived tailer thus holds a working set, not an unbounded
   history of every closure hash it ever compiled.

   Shared counters ([hits]/[misses]/[compile_seconds]) are plain
   metrics mutated only on the caller's domain: the sequential path
   increments directly, the parallel path accumulates into per-domain
   [local] blocks that [merge] at the pool's join point. *)
module Cache = struct
  module Metrics = Cm_sim.Metrics
  module Smap = Map.Make (String)

  type entry = {
    value : compiled;
    cost : int;                (* bytes this entry accounts for *)
    last_used : int Atomic.t;  (* clock stamp; racy by design *)
  }

  type shard = { entries : entry Smap.t; bytes : int }

  type t = {
    nshards : int;
    shards : shard Atomic.t array;
    clock : int Atomic.t;
    byte_budget : int option;
    shard_budget : int;  (* byte_budget / nshards, or max_int *)
    evicted : int Atomic.t;
    hit_counter : Metrics.Counter.t;
    miss_counter : Metrics.Counter.t;
    compile_seconds : Metrics.Histogram.t;
  }

  let create ?byte_budget ?(shards = 16) () =
    let nshards = max 1 shards in
    {
      nshards;
      shards =
        Array.init nshards (fun _ -> Atomic.make { entries = Smap.empty; bytes = 0 });
      clock = Atomic.make 0;
      byte_budget;
      shard_budget =
        (match byte_budget with
        | Some budget -> max 1 (budget / nshards)
        | None -> max_int);
      evicted = Atomic.make 0;
      hit_counter = Metrics.Counter.create ();
      miss_counter = Metrics.Counter.create ();
      compile_seconds = Metrics.Histogram.create ();
    }

  (* What an entry charges against the budget: the artifact bytes plus
     the strings hanging off the record and a fixed allowance for the
     record, schema pointer and map node. *)
  let entry_cost c =
    String.length c.json_text + String.length c.config_path
    + String.length c.artifact_path
    + List.fold_left (fun acc d -> acc + String.length d) 0 c.deps
    + 160

  let shard_of t key = Hashtbl.hash key mod t.nshards

  let find t key =
    let root = Atomic.get t.shards.(shard_of t key) in
    match Smap.find_opt key root.entries with
    | Some e ->
        Atomic.set e.last_used (Atomic.fetch_and_add t.clock 1);
        Some e.value
    | None -> None

  (* Evict least-recently-stamped entries (never [keep]) until the
     shard fits its budget. *)
  let rec shrink t ~keep shard nevicted =
    if shard.bytes <= t.shard_budget || Smap.cardinal shard.entries <= 1 then
      shard, nevicted
    else begin
      let victim =
        Smap.fold
          (fun key e acc ->
            if String.equal key keep then acc
            else
              match acc with
              | Some (_, best) when Atomic.get best.last_used <= Atomic.get e.last_used
                -> acc
              | _ -> Some (key, e))
          shard.entries None
      in
      match victim with
      | None -> shard, nevicted
      | Some (key, e) ->
          shrink t ~keep
            { entries = Smap.remove key shard.entries; bytes = shard.bytes - e.cost }
            (nevicted + 1)
    end

  let rec store t key value =
    let cell = t.shards.(shard_of t key) in
    let old = Atomic.get cell in
    if Smap.mem key old.entries then ()
      (* a racing publisher won; closure hashes are content addresses,
         so its artifact is byte-identical to ours *)
    else begin
      let e =
        {
          value;
          cost = entry_cost value;
          last_used = Atomic.make (Atomic.fetch_and_add t.clock 1);
        }
      in
      let grown = { entries = Smap.add key e old.entries; bytes = old.bytes + e.cost } in
      let next, nevicted = shrink t ~keep:key grown 0 in
      if Atomic.compare_and_set cell old next then begin
        if nevicted > 0 then ignore (Atomic.fetch_and_add t.evicted nevicted)
      end
      else store t key value
    end

  let hits t = Metrics.Counter.value t.hit_counter
  let misses t = Metrics.Counter.value t.miss_counter

  let size t =
    Array.fold_left
      (fun acc cell -> acc + Smap.cardinal (Atomic.get cell).entries)
      0 t.shards

  let resident_bytes t =
    Array.fold_left (fun acc cell -> acc + (Atomic.get cell).bytes) 0 t.shards

  let evictions t = Atomic.get t.evicted
  let byte_budget t = t.byte_budget
  let shard_count t = t.nshards
  let compile_seconds t = t.compile_seconds

  (* Per-domain counter block, merged on the caller's domain at the
     pool's join point — shared metrics are never touched from a
     worker. *)
  type local = {
    mutable lhits : int;
    mutable lmisses : int;
    mutable lsamples : float list;  (* per-miss compile seconds, newest first *)
  }

  let local () = { lhits = 0; lmisses = 0; lsamples = [] }

  let merge t l =
    if l.lhits > 0 then Metrics.Counter.incr ~by:l.lhits t.hit_counter;
    if l.lmisses > 0 then Metrics.Counter.incr ~by:l.lmisses t.miss_counter;
    List.iter (Metrics.Histogram.add t.compile_seconds) (List.rev l.lsamples)
end

type t = {
  tree : Source_tree.t;
  vals : Validator.t;
  dep : Depgraph.t;
  cache : Cache.t;
}

let create ?validators ?cache ?depgraph tree =
  let vals = match validators with Some v -> v | None -> Validator.create () in
  let dep =
    match depgraph with
    | Some dep -> dep
    | None ->
        let dep = Depgraph.create () in
        Depgraph.scan dep tree;
        dep
  in
  let cache = match cache with Some c -> c | None -> Cache.create () in
  { tree; vals; dep; cache }

let validators t = t.vals
let source_tree t = t.tree
let depgraph t = t.dep
let cache t = t.cache

let artifact_path_of path =
  match Source_tree.kind_of_path path with
  | Source_tree.Cconf ->
      let base = String.sub path 0 (String.length path - String.length ".cconf") in
      base ^ ".json"
  | Source_tree.Cinc | Source_tree.Thrift | Source_tree.Cvalidator | Source_tree.Raw -> path

let err at stage fmt = Printf.ksprintf (fun message -> Error { at; stage; message }) fmt

(* Source validators live at "<dir>/<Type>.thrift-cvalidator" or
   anywhere in the tree with that basename; discovery is by suffix. *)
let source_validator t type_name =
  let suffix = type_name ^ ".thrift-cvalidator" in
  let matches path =
    let n = String.length path and m = String.length suffix in
    n >= m
    && String.sub path (n - m) m = suffix
    && (n = m || path.[n - m - 1] = '/')
  in
  match List.find_opt matches (Source_tree.paths t.tree) with
  | Some path -> Source_tree.read t.tree path
  | None -> None

let run_validators t ~path ~type_name value =
  match Validator.validate t.vals ~type_name value with
  | Validator.Fail reason -> err path Validation "%s" reason
  | Validator.Pass -> (
      match source_validator t type_name with
      | None -> Ok ()
      | Some source -> (
          match Validator.of_source ~type_name ~source with
          | Error reason -> err path Validation "%s" reason
          | Ok rule -> (
              match rule.Validator.check value with
              | Validator.Pass -> Ok ()
              | Validator.Fail reason -> err path Validation "%s" reason)))

let compile_cconf t path source =
  match
    Cm_lang.Eval.run ~loader:(Source_tree.loader t.tree) ~path ~source
  with
  | Error e -> err path Eval "line %d: %s" e.Cm_lang.Eval.line e.Cm_lang.Eval.message
  | Ok outcome -> (
      match outcome.Cm_lang.Eval.export with
      | None -> err path Eval "config program did not export anything"
      | Some exported -> (
          match Cm_lang.Eval.to_thrift exported with
          | Error reason -> err path Serialize "%s" reason
          | Ok value -> (
              let schema = outcome.Cm_lang.Eval.schema in
              let typed =
                match value with
                | Cm_thrift.Value.Struct (name, _) -> (
                    match Cm_thrift.Check.check_struct schema name value with
                    | Ok normalized -> Ok (normalized, Some name)
                    | Error e ->
                        err path Schema "%s" (Format.asprintf "%a" Cm_thrift.Check.pp_error e))
                | other -> Ok (other, None)
              in
              match typed with
              | Error _ as e -> e
              | Ok (normalized, type_name) -> (
                  let validated =
                    match type_name with
                    | Some name -> run_validators t ~path ~type_name:name normalized
                    | None -> Ok ()
                  in
                  match validated with
                  | Error _ as e -> e
                  | Ok () ->
                      let json = Cm_thrift.Codec.encode normalized in
                      let json_text = Cm_json.Value.to_compact_string json in
                      Ok
                        {
                          config_path = path;
                          artifact_path = artifact_path_of path;
                          json;
                          json_text;
                          digest = digest_of_text json_text;
                          type_name;
                          schema;
                          schema_hash =
                            (match type_name with
                            | Some _ -> Some (Cm_thrift.Schema.hash schema)
                            | None -> None);
                          deps = outcome.Cm_lang.Eval.loaded;
                        }))))

let compile_raw path source =
  let ends_with suffix =
    let n = String.length path and m = String.length suffix in
    n >= m && String.sub path (n - m) m = suffix
  in
  match Cm_json.Parser.parse source with
  | Ok json ->
      (* Raw configs that happen to be JSON keep their structure. *)
      let json_text = Cm_json.Value.to_compact_string json in
      Ok
        {
          config_path = path;
          artifact_path = path;
          json;
          json_text;
          digest = digest_of_text json_text;
          type_name = None;
          schema = Cm_thrift.Schema.empty;
          schema_hash = None;
          deps = [];
        }
  | Error e when ends_with ".json" ->
      err path Parse "%s" (Format.asprintf "%a" Cm_json.Parser.pp_error e)
  | Error _ ->
      (* Arbitrary raw content is distributed as-is (§6.1: "Configerator
         allows engineers to check in raw configs of any format"). *)
      Ok
        {
          config_path = path;
          artifact_path = path;
          json = Cm_json.Value.String source;
          json_text = source;
          digest = digest_of_text source;
          type_name = None;
          schema = Cm_thrift.Schema.empty;
          schema_hash = None;
          deps = [];
        }

let compile t path =
  match Source_tree.read t.tree path with
  | None -> err path Parse "no such source file"
  | Some source -> (
      match Source_tree.kind_of_path path with
      | Source_tree.Cconf -> compile_cconf t path source
      | Source_tree.Raw -> compile_raw path source
      | Source_tree.Cinc | Source_tree.Thrift | Source_tree.Cvalidator ->
          err path Parse "not a config root (modules and schemas are not compiled directly)")

(* The content key of a config: its own source, its transitive import
   closure, and every validator source (plus the validators' own
   imports) — a validator can constrain any typed config, so its text
   is part of every typed compile.  Hashing the closure rather than
   tracking timestamps makes the memo table shareable across source
   trees: a development clone and the live tree that agree on the
   closure bytes agree on the artifact. *)
let closure_hash t path =
  let validator_closure =
    List.concat_map
      (fun v -> v :: Depgraph.transitive_deps t.dep v)
      (Source_tree.paths_of_kind t.tree Source_tree.Cvalidator)
  in
  let closure =
    List.sort_uniq String.compare
      ((path :: Depgraph.transitive_deps t.dep path) @ validator_closure)
  in
  let buf = Buffer.create 512 in
  List.iter
    (fun p ->
      Buffer.add_string buf p;
      Buffer.add_char buf '\000';
      (match Source_tree.read t.tree p with
      | Some content -> Buffer.add_string buf content
      | None -> Buffer.add_string buf "\000<missing>");
      Buffer.add_char buf '\000')
    closure;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* Memoized compile: unchanged transitive closures are never
   re-evaluated.  Only successful artifacts are cached — errors are
   cheap to reproduce and must stay attributable to current sources.
   The [stats] block receives the hit/miss/latency accounting; the
   sequential entry point merges it into the shared counters
   immediately, the parallel one at the pool's join. *)
let compile_memo_local t stats path =
  let key = closure_hash t path in
  match Cache.find t.cache key with
  | Some compiled ->
      stats.Cache.lhits <- stats.Cache.lhits + 1;
      Ok compiled
  | None ->
      let started = Sys.time () in
      let result = compile t path in
      stats.Cache.lsamples <- (Sys.time () -. started) :: stats.Cache.lsamples;
      stats.Cache.lmisses <- stats.Cache.lmisses + 1;
      (match result with
      | Ok compiled -> Cache.store t.cache key compiled
      | Error _ -> ());
      result

let compile_memo t path =
  let stats = Cache.local () in
  let result = compile_memo_local t stats path in
  Cache.merge t.cache stats;
  result

(* Fold per-path results into ([oks], [errors]), both in [targets]
   order — the canonical output ordering every compile entry point
   (sequential or parallel) produces. *)
let assemble targets result_of =
  List.fold_left
    (fun (oks, errors) path ->
      match result_of path with
      | Ok compiled -> compiled :: oks, errors
      | Error e -> oks, e :: errors)
    ([], []) targets
  |> fun (oks, errors) -> List.rev oks, List.rev errors

(* Parallel collect: topologically level-order the targets from the
   dependency graph, fan each level out to the domain pool (workers
   claim configs with one fetch-and-add; per-domain counter blocks
   merge at each level's join), then assemble results in target
   order.  Because distinct config paths have distinct closure hashes
   (a config's own path and source are part of its closure), no two
   in-flight compiles share a memo key — hit/miss totals are
   identical to the sequential path's, and so is the assembled
   output, bit for bit. *)
let collect_par t pool targets =
  let results = Hashtbl.create (max 16 (List.length targets)) in
  List.iter
    (fun level ->
      let level = Array.of_list level in
      let out =
        Cm_parallel.Pool.map_local pool ~local:Cache.local
          ~f:(fun stats path -> compile_memo_local t stats path)
          ~merge:(Cache.merge t.cache) level
      in
      Array.iteri (fun i result -> Hashtbl.replace results level.(i) result) out)
    (Depgraph.levels t.dep targets);
  assemble targets (Hashtbl.find results)

let collect ?pool t targets =
  match pool with
  | Some pool -> collect_par t pool targets
  | None -> assemble targets (compile_memo t)

let note_changed t changed =
  List.iter (fun path -> Depgraph.update_file t.dep t.tree path) changed

let compile_affected ?pool t ~changed =
  note_changed t changed;
  collect ?pool t (Depgraph.affected_configs t.dep changed)

let compile_all ?pool t =
  collect ?pool t
    (Source_tree.paths_of_kind t.tree Source_tree.Cconf
    @ Source_tree.paths_of_kind t.tree Source_tree.Raw)
