type compiled = {
  config_path : string;
  artifact_path : string;
  json : Cm_json.Value.t;
  json_text : string;
  digest : string;
  type_name : string option;
  schema : Cm_thrift.Schema.t;
  schema_hash : string option;
  deps : string list;
}

let digest_of_text text = Digest.to_hex (Digest.string text)

type error = { at : string; stage : stage; message : string }

and stage = Parse | Eval | Schema | Validation | Serialize

let stage_name = function
  | Parse -> "parse"
  | Eval -> "eval"
  | Schema -> "schema"
  | Validation -> "validation"
  | Serialize -> "serialize"

let pp_error ppf { at; stage; message } =
  Format.fprintf ppf "%s: [%s] %s" at (stage_name stage) message

(* Validation failures are the validator defense layer speaking; every
   other compile error is the compiler itself. *)
let verdict_of_error { at; stage; message } =
  let layer = match stage with Validation -> "validator" | _ -> "compile" in
  Defense.fail ~stage:layer ~rule:(stage_name stage) ~path:at message

module Cache = struct
  module Metrics = Cm_sim.Metrics

  type t = {
    table : (string, compiled) Hashtbl.t; (* closure hash -> artifact *)
    hit_counter : Metrics.Counter.t;
    miss_counter : Metrics.Counter.t;
    compile_seconds : Metrics.Histogram.t;
  }

  let create () =
    {
      table = Hashtbl.create 256;
      hit_counter = Metrics.Counter.create ();
      miss_counter = Metrics.Counter.create ();
      compile_seconds = Metrics.Histogram.create ();
    }

  let hits t = Metrics.Counter.value t.hit_counter
  let misses t = Metrics.Counter.value t.miss_counter
  let size t = Hashtbl.length t.table
  let compile_seconds t = t.compile_seconds
end

type t = {
  tree : Source_tree.t;
  vals : Validator.t;
  dep : Depgraph.t;
  cache : Cache.t;
}

let create ?validators ?cache ?depgraph tree =
  let vals = match validators with Some v -> v | None -> Validator.create () in
  let dep =
    match depgraph with
    | Some dep -> dep
    | None ->
        let dep = Depgraph.create () in
        Depgraph.scan dep tree;
        dep
  in
  let cache = match cache with Some c -> c | None -> Cache.create () in
  { tree; vals; dep; cache }

let validators t = t.vals
let source_tree t = t.tree
let depgraph t = t.dep
let cache t = t.cache

let artifact_path_of path =
  match Source_tree.kind_of_path path with
  | Source_tree.Cconf ->
      let base = String.sub path 0 (String.length path - String.length ".cconf") in
      base ^ ".json"
  | Source_tree.Cinc | Source_tree.Thrift | Source_tree.Cvalidator | Source_tree.Raw -> path

let err at stage fmt = Printf.ksprintf (fun message -> Error { at; stage; message }) fmt

(* Source validators live at "<dir>/<Type>.thrift-cvalidator" or
   anywhere in the tree with that basename; discovery is by suffix. *)
let source_validator t type_name =
  let suffix = type_name ^ ".thrift-cvalidator" in
  let matches path =
    let n = String.length path and m = String.length suffix in
    n >= m
    && String.sub path (n - m) m = suffix
    && (n = m || path.[n - m - 1] = '/')
  in
  match List.find_opt matches (Source_tree.paths t.tree) with
  | Some path -> Source_tree.read t.tree path
  | None -> None

let run_validators t ~path ~type_name value =
  match Validator.validate t.vals ~type_name value with
  | Validator.Fail reason -> err path Validation "%s" reason
  | Validator.Pass -> (
      match source_validator t type_name with
      | None -> Ok ()
      | Some source -> (
          match Validator.of_source ~type_name ~source with
          | Error reason -> err path Validation "%s" reason
          | Ok rule -> (
              match rule.Validator.check value with
              | Validator.Pass -> Ok ()
              | Validator.Fail reason -> err path Validation "%s" reason)))

let compile_cconf t path source =
  match
    Cm_lang.Eval.run ~loader:(Source_tree.loader t.tree) ~path ~source
  with
  | Error e -> err path Eval "line %d: %s" e.Cm_lang.Eval.line e.Cm_lang.Eval.message
  | Ok outcome -> (
      match outcome.Cm_lang.Eval.export with
      | None -> err path Eval "config program did not export anything"
      | Some exported -> (
          match Cm_lang.Eval.to_thrift exported with
          | Error reason -> err path Serialize "%s" reason
          | Ok value -> (
              let schema = outcome.Cm_lang.Eval.schema in
              let typed =
                match value with
                | Cm_thrift.Value.Struct (name, _) -> (
                    match Cm_thrift.Check.check_struct schema name value with
                    | Ok normalized -> Ok (normalized, Some name)
                    | Error e ->
                        err path Schema "%s" (Format.asprintf "%a" Cm_thrift.Check.pp_error e))
                | other -> Ok (other, None)
              in
              match typed with
              | Error _ as e -> e
              | Ok (normalized, type_name) -> (
                  let validated =
                    match type_name with
                    | Some name -> run_validators t ~path ~type_name:name normalized
                    | None -> Ok ()
                  in
                  match validated with
                  | Error _ as e -> e
                  | Ok () ->
                      let json = Cm_thrift.Codec.encode normalized in
                      let json_text = Cm_json.Value.to_compact_string json in
                      Ok
                        {
                          config_path = path;
                          artifact_path = artifact_path_of path;
                          json;
                          json_text;
                          digest = digest_of_text json_text;
                          type_name;
                          schema;
                          schema_hash =
                            (match type_name with
                            | Some _ -> Some (Cm_thrift.Schema.hash schema)
                            | None -> None);
                          deps = outcome.Cm_lang.Eval.loaded;
                        }))))

let compile_raw path source =
  let ends_with suffix =
    let n = String.length path and m = String.length suffix in
    n >= m && String.sub path (n - m) m = suffix
  in
  match Cm_json.Parser.parse source with
  | Ok json ->
      (* Raw configs that happen to be JSON keep their structure. *)
      let json_text = Cm_json.Value.to_compact_string json in
      Ok
        {
          config_path = path;
          artifact_path = path;
          json;
          json_text;
          digest = digest_of_text json_text;
          type_name = None;
          schema = Cm_thrift.Schema.empty;
          schema_hash = None;
          deps = [];
        }
  | Error e when ends_with ".json" ->
      err path Parse "%s" (Format.asprintf "%a" Cm_json.Parser.pp_error e)
  | Error _ ->
      (* Arbitrary raw content is distributed as-is (§6.1: "Configerator
         allows engineers to check in raw configs of any format"). *)
      Ok
        {
          config_path = path;
          artifact_path = path;
          json = Cm_json.Value.String source;
          json_text = source;
          digest = digest_of_text source;
          type_name = None;
          schema = Cm_thrift.Schema.empty;
          schema_hash = None;
          deps = [];
        }

let compile t path =
  match Source_tree.read t.tree path with
  | None -> err path Parse "no such source file"
  | Some source -> (
      match Source_tree.kind_of_path path with
      | Source_tree.Cconf -> compile_cconf t path source
      | Source_tree.Raw -> compile_raw path source
      | Source_tree.Cinc | Source_tree.Thrift | Source_tree.Cvalidator ->
          err path Parse "not a config root (modules and schemas are not compiled directly)")

(* The content key of a config: its own source, its transitive import
   closure, and every validator source (plus the validators' own
   imports) — a validator can constrain any typed config, so its text
   is part of every typed compile.  Hashing the closure rather than
   tracking timestamps makes the memo table shareable across source
   trees: a development clone and the live tree that agree on the
   closure bytes agree on the artifact. *)
let closure_hash t path =
  let validator_closure =
    List.concat_map
      (fun v -> v :: Depgraph.transitive_deps t.dep v)
      (Source_tree.paths_of_kind t.tree Source_tree.Cvalidator)
  in
  let closure =
    List.sort_uniq String.compare
      ((path :: Depgraph.transitive_deps t.dep path) @ validator_closure)
  in
  let buf = Buffer.create 512 in
  List.iter
    (fun p ->
      Buffer.add_string buf p;
      Buffer.add_char buf '\000';
      (match Source_tree.read t.tree p with
      | Some content -> Buffer.add_string buf content
      | None -> Buffer.add_string buf "\000<missing>");
      Buffer.add_char buf '\000')
    closure;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* Memoized compile: unchanged transitive closures are never
   re-evaluated.  Only successful artifacts are cached — errors are
   cheap to reproduce and must stay attributable to current sources. *)
let compile_memo t path =
  let key = closure_hash t path in
  match Hashtbl.find_opt t.cache.Cache.table key with
  | Some compiled ->
      Cache.Metrics.Counter.incr t.cache.Cache.hit_counter;
      Ok compiled
  | None ->
      let started = Sys.time () in
      let result = compile t path in
      Cache.Metrics.Histogram.add t.cache.Cache.compile_seconds
        (Sys.time () -. started);
      Cache.Metrics.Counter.incr t.cache.Cache.miss_counter;
      (match result with
      | Ok compiled -> Hashtbl.replace t.cache.Cache.table key compiled
      | Error _ -> ());
      result

let collect t targets =
  List.fold_left
    (fun (oks, errors) path ->
      match compile_memo t path with
      | Ok compiled -> compiled :: oks, errors
      | Error e -> oks, e :: errors)
    ([], []) targets
  |> fun (oks, errors) -> List.rev oks, List.rev errors

let note_changed t changed =
  List.iter (fun path -> Depgraph.update_file t.dep t.tree path) changed

let compile_affected t ~changed =
  note_changed t changed;
  collect t (Depgraph.affected_configs t.dep changed)

let compile_all t =
  collect t
    (Source_tree.paths_of_kind t.tree Source_tree.Cconf
    @ Source_tree.paths_of_kind t.tree Source_tree.Raw)
