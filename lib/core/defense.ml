type repair = {
  origin : string;
  suggestion : string;
  note : string;
}

type verdict = {
  stage : string;
  rule : string;
  path : string;
  passed : bool;
  detail : string;
  repair : repair option;
}

type finding = { ok : bool; at : string; note : string }

type rejection = { failed_stage : string; verdicts : verdict list }

let repair ~origin ~suggestion note = { origin; suggestion; note }
let finding ?(at = "") ~ok note = { ok; at; note }

let pass ~stage ~rule ?(path = "") detail =
  { stage; rule; path; passed = true; detail; repair = None }

let fail ~stage ~rule ?(path = "") ?repair detail =
  { stage; rule; path; passed = false; detail; repair }

let of_finding ~stage ~rule f =
  { stage; rule; path = f.at; passed = f.ok; detail = f.note; repair = None }

let all_passed verdicts = List.for_all (fun v -> v.passed) verdicts
let failures verdicts = List.filter (fun v -> not v.passed) verdicts
let reject ~stage verdicts = { failed_stage = stage; verdicts }

let pp_repair ppf r =
  Format.fprintf ppf "repair (%s): %s — %s" r.origin r.suggestion r.note

let pp_verdict ppf v =
  Format.fprintf ppf "[%s/%s] %s%s%s" v.stage v.rule
    (if v.passed then "ok" else "FAIL")
    (if v.path = "" then "" else " " ^ v.path)
    (if v.detail = "" then "" else ": " ^ v.detail);
  match v.repair with
  | Some r -> Format.fprintf ppf "@,  %a" pp_repair r
  | None -> ()

let summary r =
  match failures r.verdicts with
  | [] -> Printf.sprintf "rejected at %s" r.failed_stage
  | v :: _ ->
      Printf.sprintf "rejected at %s: [%s] %s%s" r.failed_stage v.rule
        (if v.path = "" then "" else v.path ^ ": ")
        v.detail

let pp_rejection ppf r =
  Format.fprintf ppf "@[<v>rejected at %s:" r.failed_stage;
  List.iter (fun v -> Format.fprintf ppf "@,  %a" pp_verdict v) r.verdicts;
  Format.fprintf ppf "@]"

module Json = Cm_json.Value

let verdict_to_json v =
  Json.obj
    ([
       "stage", Json.String v.stage;
       "rule", Json.String v.rule;
       "path", Json.String v.path;
       "passed", Json.Bool v.passed;
       "detail", Json.String v.detail;
     ]
    @
    match v.repair with
    | None -> []
    | Some r ->
        [
          ( "repair",
            Json.obj
              [
                "origin", Json.String r.origin;
                "suggestion", Json.String r.suggestion;
                "note", Json.String r.note;
              ] );
        ])
