(** Configuration-error models for the §6.4 defense-in-depth
    experiment.

    The paper classifies production incidents into three types:
    - {b Type I} — common, obvious-once-spotted errors (typos,
      out-of-bound values, wrong cluster).  Validators catch the ones
      whose invariant is declared; reviewers catch some of the rest;
      a small-canary error spike catches most survivors.
    - {b Type II} — subtle errors (load, failure-induced, butterfly
      effects).  Invisible to validators, review and small canaries;
      only the full-cluster canary phase can see them, and not always.
    - {b Type III} — valid config changes that expose latent code
      bugs (e.g. a race on a newly exercised code path).  Nothing
      before the canary can catch them; whether the canary does
      depends on the bug manifesting within the observation window.

    Each model below yields a {!Canary.sampler} exhibiting the
    corresponding pathology, so the pipeline's layers catch (or miss)
    them for the {e mechanistic} reason the paper describes, not by a
    coin flip at the end. *)

type error_type = Type_i | Type_ii | Type_iii

val error_type_name : error_type -> string

type injected = {
  etype : error_type;
  validator_visible : bool;
      (** Type I only: the bad value violates a declared invariant,
          so the compiler rejects it deterministically *)
  verify_visible : bool;
      (** the {!Cm_verify} stage would flag it — Type I: a statically
          checkable cross-artifact invariant no validator declared;
          Type II: a registered config test runs consumer code against
          the proposed value and trips; Type III: never (the config is
          valid — the bug is in unexercised consumer code) *)
  reviewer_catches : bool;
      (** modeled reviewer vigilance, drawn per change; independent of
          [verify_visible] so pipelines without the verify stage
          behave exactly as before *)
  sampler : Canary.sampler;
}

type rates = {
  share_type_i : float;      (** of injected errors *)
  share_type_ii : float;     (** rest is Type III *)
  p_validator_covers : float; (** Type I invariant declared *)
  p_verify_static : float;
      (** Type I invariant statically checkable by the verify stage
          when no validator declared it *)
  p_config_test_covers : float;
      (** Type II visible to a registered config test *)
  p_reviewer_catches : float; (** Type I caught in review *)
  p_canary_small_catches : float;  (** Type I error spike visible on 20 servers *)
  p_canary_cluster_catches : float; (** Type II load issue visible at cluster scale *)
  p_bug_manifests : float;    (** Type III race triggers during the canary window *)
}

val default_rates : rates
(** Calibrated so escaped incidents split ≈ 42% / 36% / 22%
    (the paper's Table in §6.4). *)

val inject : Cm_sim.Rng.t -> rates -> injected
(** Draw one erroneous change. *)

(** {1 Samplers} *)

val healthy : Cm_sim.Rng.t -> Canary.sampler
(** Gaussian-noise baseline around healthy values. *)

val type_i_sampler : Cm_sim.Rng.t -> detectable:bool -> Canary.sampler
(** Error-rate spike independent of cohort size; [detectable = false]
    models environment-specific Type I errors that even the canary
    misses. *)

val type_ii_sampler : Cm_sim.Rng.t -> detectable:bool -> Canary.sampler
(** Latency grows with the test cohort: fine on 20 servers, pathological
    at cluster scale — the §6.4 data-store overload incident. *)

val type_iii_sampler : Cm_sim.Rng.t -> manifests:bool -> Canary.sampler
(** Crashes appear (or not) on the new code path. *)
