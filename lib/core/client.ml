type t = {
  cnode : Cm_sim.Topology.node_id;
  czeus : Cm_zeus.Service.t;
  proxy : Cm_zeus.Service.proxy;
  watched : (string, unit) Hashtbl.t;
  (* Parse-once memos, keyed by the (path, zxid) of the proxy's cached
     bytes: steady-state reads are a hashtable hit, decode work happens
     once per delivered version (the paper's "parse once, share among
     processes" proxy design, §3.4). *)
  json_memo : (string, int * Cm_json.Value.t option) Hashtbl.t;
  typed_memo : (string * string, int * (Cm_thrift.Value.t, string) result) Hashtbl.t;
  mutable ndecodes : int;
  mutable nmemo_hits : int;
}

let create zeus ~node =
  {
    cnode = node;
    czeus = zeus;
    proxy = Cm_zeus.Service.proxy_on zeus node;
    watched = Hashtbl.create 8;
    json_memo = Hashtbl.create 8;
    typed_memo = Hashtbl.create 8;
    ndecodes = 0;
    nmemo_hits = 0;
  }

let node t = t.cnode

let want t path =
  if not (Hashtbl.mem t.watched path) then begin
    Hashtbl.replace t.watched path ();
    (* Clients are coverage targets of their own: "what fraction of
       subscribed clients hold at least this version" is a different
       question from proxy coverage (a proxy fronts many processes). *)
    (match Cm_zeus.Service.propagation t.czeus with
    | Some p ->
        Cm_trace.Propagation.register_target p ~kind:"client" ~path ~node:t.cnode ()
    | None -> ());
    Cm_zeus.Service.subscribe t.proxy ~path (fun ~zxid data ->
        ignore data;
        match Cm_zeus.Service.propagation t.czeus with
        | Some p ->
            Cm_trace.Propagation.record_arrival p ~kind:"client" ~path
              ~node:t.cnode ~zxid ()
        | None -> ())
  end

let get_raw t path =
  (* Reading declares interest: the proxy fetches and watches the
     config so subsequent reads (and updates) are served locally. *)
  want t path;
  Cm_zeus.Service.proxy_get t.proxy path

let get_json t path =
  want t path;
  match Cm_zeus.Service.proxy_get_versioned t.proxy path with
  | None -> None
  | Some (zxid, data) -> (
      match Hashtbl.find_opt t.json_memo path with
      | Some (memo_zxid, memoed) when memo_zxid = zxid ->
          t.nmemo_hits <- t.nmemo_hits + 1;
          memoed
      | _ ->
          t.ndecodes <- t.ndecodes + 1;
          let parsed =
            match Cm_json.Parser.parse data with Ok json -> Some json | Error _ -> None
          in
          Hashtbl.replace t.json_memo path (zxid, parsed);
          parsed)

let get_typed t ~schema ~type_name path =
  want t path;
  match Cm_zeus.Service.proxy_get_versioned t.proxy path with
  | None -> Error (Printf.sprintf "config %s not available" path)
  | Some (zxid, data) -> (
      match Hashtbl.find_opt t.typed_memo (path, type_name) with
      | Some (memo_zxid, memoed) when memo_zxid = zxid ->
          t.nmemo_hits <- t.nmemo_hits + 1;
          memoed
      | _ ->
          t.ndecodes <- t.ndecodes + 1;
          let decoded =
            match Cm_json.Parser.parse data with
            | Error e -> Error (Format.asprintf "%a" Cm_json.Parser.pp_error e)
            | Ok json -> (
                match Cm_thrift.Codec.decode_struct schema type_name json with
                | Ok v -> Ok v
                | Error e -> Error (Format.asprintf "%a" Cm_thrift.Codec.pp_error e))
          in
          Hashtbl.replace t.typed_memo (path, type_name) (zxid, decoded);
          decoded)

let decodes t = t.ndecodes
let memo_hits t = t.nmemo_hits

let subscribe_raw t path callback =
  Cm_zeus.Service.subscribe t.proxy ~path (fun ~zxid:_ data -> callback data)

let subscribe t path callback =
  subscribe_raw t path (fun data ->
      match Cm_json.Parser.parse data with Ok json -> callback json | Error _ -> ())
