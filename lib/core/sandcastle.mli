(** Sandcastle: automated continuous-integration tests run in a
    sandbox against a proposed config change (§3.3).  Checks operate
    on the set of compiled artifacts the change produces and post
    their results back to the review. *)

type check = {
  check_name : string;
  run : Compiler.compiled list -> Defense.finding;
      (** the raw result; {!run} lifts it into a {!Defense.verdict}
          with stage ["sandcastle"] and rule [check_name] *)
}

type report = Defense.verdict list

type t

val create : ?with_defaults:bool -> unit -> t
(** [with_defaults] (default true) installs {!default_checks}. *)

val add_check : t -> check -> unit

val run : ?pool:Cm_parallel.Pool.t -> t -> Compiler.compiled list -> report
(** Checks run only over artifacts whose content (digest + typing
    metadata) this instance has not already validated successfully;
    byte-identical artifacts from earlier passing runs are skipped.
    Failing artifacts are always re-checked.  With [pool], independent
    checks fan out across its domains; the report order (and the
    validated-set bookkeeping, done after the join) is identical to
    the sequential run. *)

val passed : report -> bool

val revalidations_skipped : t -> int
(** Artifacts skipped because their exact bytes already passed. *)

val post_to_review : Review.t -> Review.diff_id -> report -> unit

val default_checks : unit -> check list
(** Broad-coverage synthetic site tests:
    - every artifact's JSON parses back to itself (round-trip),
    - no artifact exceeds the inline size limit (1 MB — larger content
      belongs in PackageVessel),
    - no empty object exports,
    - typed artifacts carry a schema hash. *)
