(** The Dependency Service (§3.1): extracts dependencies from source
    code automatically — "without the need to manually edit a
    makefile" — and answers the key question of incremental builds:
    when a module changes, which configs must be recompiled?

    Dependencies are static: the [import]/[import_thrift] statements
    of each source file, closed transitively. *)

type t

val create : unit -> t

val copy : t -> t
(** Independent snapshot of the index — what a proposal's development
    clone starts from before {!update_file} is applied to its edits.
    O(edges), no re-parsing. *)

val scan : t -> Source_tree.t -> unit
(** (Re)index the whole tree.  Unparseable files get no edges (the
    compiler will surface their errors). *)

val update_file : t -> Source_tree.t -> string -> unit
(** Re-extract one file's imports after an edit. *)

val direct_deps : t -> string -> string list
(** Imports of one file (normalized to tree paths). *)

val dependents : t -> string -> string list
(** Files that directly import the given path. *)

val affected_configs : t -> string list -> string list
(** Given changed source paths, every [*.cconf] (or raw config) that
    must be recompiled: the changed configs themselves plus all
    transitive importers.  Sorted, deduplicated.  This is what makes
    one edit of "app_port.cinc" recompile both "app.cconf" and
    "firewall.cconf" in the same commit.

    When the change reaches a [*.thrift-cvalidator] (directly or
    through a module it imports), every [*.cconf] is returned: a
    validator applies to all configs of its type, and the type binding
    is only known after compiling each config. *)

val transitive_deps : t -> string -> string list
(** Full import closure of a file. *)

val levels : t -> string list -> string list list
(** Topological level order over the given set: each returned level
    holds paths that do not (transitively) import any other member of
    their own level — they may be compiled concurrently — and every
    path appears strictly after the members of the set it imports.
    Levels are in dependency order, each level sorted, the whole
    schedule a pure function of the graph (duplicates dropped).
    Configs that only share modules, never importing each other, form
    a single level. *)

val file_count : t -> int
