(** Core-side façade over {!Cm_parallel.Pool} for the landing path:
    one spelling for "optionally fan this out across domains". *)

module Pool = Cm_parallel.Pool

val map_ordered : Pool.t option -> ('a -> 'b) -> 'a list -> 'b list
(** [map_ordered pool f items] is [List.map f items] when [pool] is
    [None] (the sequential landing path, byte-for-byte the old code);
    with a pool, items fan out across its domains and the results come
    back in input order — so callers' downstream output is identical
    either way. *)
