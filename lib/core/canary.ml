module Engine = Cm_sim.Engine
module Topology = Cm_sim.Topology

type predicate =
  | Metric_below of string * float
  | Relative_increase_at_most of string * float
  | Relative_drop_at_most of string * float
  | No_crashes

let predicate_name = function
  | Metric_below (m, x) -> Printf.sprintf "%s < %g" m x
  | Relative_increase_at_most (m, x) -> Printf.sprintf "%s increase <= %g%%" m (100.0 *. x)
  | Relative_drop_at_most (m, x) -> Printf.sprintf "%s drop <= %g%%" m (100.0 *. x)
  | No_crashes -> "no crashes"

type target = Servers of int | Cluster

type phase = {
  phase_name : string;
  target : target;
  duration : float;
  sample_every : float;
  checks : predicate list;
}

type spec = { phases : phase list }

let standard_checks =
  [
    No_crashes;
    Relative_increase_at_most ("error_rate", 0.25);
    Relative_increase_at_most ("latency_ms", 0.30);
    Relative_drop_at_most ("ctr", 0.05);
  ]

let default_spec =
  {
    phases =
      [
        {
          phase_name = "p1-20-servers";
          target = Servers 20;
          duration = 60.0;
          sample_every = 10.0;
          checks = standard_checks;
        };
        {
          phase_name = "p2-cluster";
          target = Cluster;
          duration = 540.0;
          sample_every = 30.0;
          checks = standard_checks;
        };
      ];
  }

type sampler =
  node:Topology.node_id -> test:bool -> cohort:int -> (string * float) list

type failure = { failed_phase : string; failed_check : string; detail : string }

type outcome = Passed | Failed of failure

let verdict_of_failure { failed_phase; failed_check; detail } =
  Defense.fail ~stage:"canary" ~rule:failed_check
    (Printf.sprintf "%s: %s" failed_phase detail)

(* Mean of a metric across sample lists; 0 when absent everywhere. *)
let metric_mean samples name =
  let sum, n =
    List.fold_left
      (fun (sum, n) metrics ->
        match List.assoc_opt name metrics with
        | Some v -> sum +. v, n + 1
        | None -> sum, n)
      (0.0, 0) samples
  in
  if n = 0 then 0.0 else sum /. float_of_int n

let eval_predicate ~test_samples ~control_samples = function
  | Metric_below (name, ceiling) ->
      let v = metric_mean test_samples name in
      if v < ceiling then Ok ()
      else Error (Printf.sprintf "test %s = %g, ceiling %g" name v ceiling)
  | Relative_increase_at_most (name, frac) ->
      let test = metric_mean test_samples name in
      let control = metric_mean control_samples name in
      let base = Float.max control 1e-9 in
      let increase = (test -. control) /. base in
      if increase <= frac then Ok ()
      else
        Error
          (Printf.sprintf "test %s = %g vs control %g (+%.1f%%, allowed +%.1f%%)" name test
             control (100.0 *. increase) (100.0 *. frac))
  | Relative_drop_at_most (name, frac) ->
      let test = metric_mean test_samples name in
      let control = metric_mean control_samples name in
      let base = Float.max control 1e-9 in
      let drop = (control -. test) /. base in
      if drop <= frac then Ok ()
      else
        Error
          (Printf.sprintf "test %s = %g vs control %g (-%.1f%%, allowed -%.1f%%)" name test
             control (100.0 *. drop) (100.0 *. frac))
  | No_crashes ->
      let crashes = metric_mean test_samples "crashes" in
      if crashes <= 0.0 then Ok ()
      else Error (Printf.sprintf "crash rate %g on test machines" crashes)

let pick_targets engine topo = function
  | Servers n ->
      let up =
        Array.to_list (Topology.nodes topo)
        |> List.filter (fun node -> node.Topology.up)
        |> List.map (fun node -> node.Topology.id)
      in
      let arr = Array.of_list up in
      Cm_sim.Rng.shuffle (Engine.rng engine) arr;
      Array.to_list (Array.sub arr 0 (min n (Array.length arr)))
  | Cluster ->
      Array.to_list (Topology.nodes_in_cluster topo ~region:0 ~cluster:0)
      |> List.filter (fun node -> node.Topology.up)
      |> List.map (fun node -> node.Topology.id)

let pick_controls engine topo ~exclude ~count =
  let excluded = Hashtbl.create 64 in
  List.iter (fun id -> Hashtbl.replace excluded id ()) exclude;
  let candidates =
    Array.to_list (Topology.nodes topo)
    |> List.filter (fun node -> node.Topology.up && not (Hashtbl.mem excluded node.Topology.id))
    |> List.map (fun node -> node.Topology.id)
  in
  let arr = Array.of_list candidates in
  Cm_sim.Rng.shuffle (Engine.rng engine) arr;
  Array.to_list (Array.sub arr 0 (min count (Array.length arr)))

let run ?(spec = default_spec) ?tracer ?(ctx = Cm_trace.Tracer.none) engine topo
    ~sampler ~on_done () =
  (* One span per phase, recorded when the phase settles either way. *)
  let note_phase phase t0 ~passed =
    match tracer with
    | Some tr ->
        ignore
          (Cm_trace.Tracer.span tr ctx
             ~name:("canary." ^ phase.phase_name)
             ~tags:[ ("passed", string_of_bool passed) ]
             ~t0 ~t1:(Engine.now engine) ())
    | None -> ()
  in
  let rec run_phase = function
    | [] -> on_done Passed
    | phase :: rest ->
        let phase_t0 = Engine.now engine in
        let test_nodes = pick_targets engine topo phase.target in
        let cohort = List.length test_nodes in
        let control_nodes = pick_controls engine topo ~exclude:test_nodes ~count:cohort in
        let test_acc = ref [] and control_acc = ref [] in
        let ticks = max 1 (int_of_float (phase.duration /. phase.sample_every)) in
        let fail check detail =
          note_phase phase phase_t0 ~passed:false;
          on_done
            (Failed { failed_phase = phase.phase_name; failed_check = check; detail })
        in
        let rec tick remaining =
          ignore
            (Engine.schedule engine ~delay:phase.sample_every (fun () ->
                 let test_samples =
                   List.map (fun node -> sampler ~node ~test:true ~cohort) test_nodes
                 in
                 let control_samples =
                   List.map (fun node -> sampler ~node ~test:false ~cohort) control_nodes
                 in
                 test_acc := test_samples @ !test_acc;
                 control_acc := control_samples @ !control_acc;
                 (* Crashes abort immediately: the canary service kills
                    the rollout as soon as instances start dying. *)
                 let crashed =
                   List.mem No_crashes phase.checks
                   && metric_mean test_samples "crashes" > 0.0
                 in
                 if crashed then
                   fail (predicate_name No_crashes)
                     (Printf.sprintf "instances crashed with %d servers on the new config"
                        cohort)
                 else if remaining > 1 then tick (remaining - 1)
                 else begin
                   (* Phase complete: evaluate all predicates. *)
                   let rec check = function
                     | [] ->
                         note_phase phase phase_t0 ~passed:true;
                         run_phase rest
                     | predicate :: more -> (
                         match
                           eval_predicate ~test_samples:!test_acc
                             ~control_samples:!control_acc predicate
                         with
                         | Ok () -> check more
                         | Error detail -> fail (predicate_name predicate) detail)
                   in
                   check phase.checks
                 end))
        in
        tick ticks
  in
  run_phase spec.phases

(* --- specs as configs ------------------------------------------------ *)

module Json = Cm_json.Value

let predicate_to_json = function
  | Metric_below (m, x) ->
      Json.obj [ "kind", Json.String "metric_below"; "metric", Json.String m; "value", Json.Float x ]
  | Relative_increase_at_most (m, x) ->
      Json.obj
        [ "kind", Json.String "relative_increase_at_most"; "metric", Json.String m;
          "value", Json.Float x ]
  | Relative_drop_at_most (m, x) ->
      Json.obj
        [ "kind", Json.String "relative_drop_at_most"; "metric", Json.String m;
          "value", Json.Float x ]
  | No_crashes -> Json.obj [ "kind", Json.String "no_crashes" ]

let spec_to_json spec =
  Json.obj
    [
      ( "phases",
        Json.List
          (List.map
             (fun phase ->
               Json.obj
                 [
                   "name", Json.String phase.phase_name;
                   ( "target",
                     match phase.target with
                     | Servers n -> Json.obj [ "servers", Json.Int n ]
                     | Cluster -> Json.String "cluster" );
                   "duration", Json.Float phase.duration;
                   "sample_every", Json.Float phase.sample_every;
                   "checks", Json.List (List.map predicate_to_json phase.checks);
                 ])
             spec.phases) );
    ]

let predicate_of_json json =
  let metric_and_value make =
    match Json.member "metric" json, Json.member "value" json with
    | Some (Json.String m), Some v -> (
        match Json.to_float v with
        | Some x -> Ok (make m x)
        | None -> Error "predicate value must be a number")
    | _ -> Error "predicate needs metric and value"
  in
  match Json.member "kind" json with
  | Some (Json.String "metric_below") -> metric_and_value (fun m x -> Metric_below (m, x))
  | Some (Json.String "relative_increase_at_most") ->
      metric_and_value (fun m x -> Relative_increase_at_most (m, x))
  | Some (Json.String "relative_drop_at_most") ->
      metric_and_value (fun m x -> Relative_drop_at_most (m, x))
  | Some (Json.String "no_crashes") -> Ok No_crashes
  | Some (Json.String other) -> Error ("unknown predicate kind " ^ other)
  | Some _ | None -> Error "predicate missing kind"

let phase_of_json json =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let* phase_name =
    match Json.member "name" json with
    | Some (Json.String s) -> Ok s
    | Some _ | None -> Error "phase missing name"
  in
  let* target =
    match Json.member "target" json with
    | Some (Json.String "cluster") -> Ok Cluster
    | Some t -> (
        match Json.member "servers" t with
        | Some (Json.Int n) when n > 0 -> Ok (Servers n)
        | Some _ | None -> Error "phase target must be \"cluster\" or {servers: n}")
    | None -> Error "phase missing target"
  in
  let float_field field default =
    match Json.member field json with
    | Some v -> ( match Json.to_float v with Some f -> f | None -> default)
    | None -> default
  in
  let duration = float_field "duration" 60.0 in
  let sample_every = Float.max 1.0 (float_field "sample_every" 10.0) in
  let* checks =
    match Json.member "checks" json with
    | Some (Json.List items) ->
        List.fold_left
          (fun acc item ->
            match acc with
            | Error _ as e -> e
            | Ok checks -> (
                match predicate_of_json item with
                | Ok p -> Ok (checks @ [ p ])
                | Error _ as e -> e))
          (Ok []) items
    | Some _ -> Error "checks must be a list"
    | None -> Ok standard_checks
  in
  if duration <= 0.0 then Error "phase duration must be positive"
  else Ok { phase_name; target; duration; sample_every; checks }

let spec_of_json json =
  match Json.member "phases" json with
  | Some (Json.List items) ->
      let rec build acc = function
        | [] ->
            if acc = [] then Error "spec has no phases" else Ok { phases = List.rev acc }
        | item :: rest -> (
            match phase_of_json item with
            | Ok phase -> build (phase :: acc) rest
            | Error _ as e -> e)
      in
      build [] items
  | Some _ | None -> Error "spec missing phases list"

let spec_of_string s =
  match Cm_json.Parser.parse s with
  | Ok json -> spec_of_json json
  | Error e -> Error (Format.asprintf "%a" Cm_json.Parser.pp_error e)

let run_sync ?spec engine topo ~sampler =
  let result = ref None in
  run ?spec engine topo ~sampler ~on_done:(fun outcome -> result := Some outcome) ();
  let rec drive () =
    match !result with
    | Some outcome -> outcome
    | None -> if Engine.step engine then drive () else Failed
          { failed_phase = "<engine>"; failed_check = "<drained>";
            detail = "simulation queue drained before canary completion" }
  in
  drive ()
