(** The end-to-end Configerator deployment pipeline (Figure 3).

    A proposed change flows through every defense layer of §3.3:

    {v
    edit -> compile (validators) -> verify (correctness plane)
         -> sandcastle CI -> code review -> automated canary
         -> landing strip -> git -> tailer -> Zeus
         -> observers -> proxies -> applications
    v}

    Any layer can bounce the change; only fully vetted changes reach
    the repository, and the tailer then distributes the new artifacts
    to the fleet.

    Compilation along the pipeline is {e incremental}: a proposal
    compiles only the affected cone of the change
    ({!Compiler.compile_affected}) against a copy of the live
    dependency index, sharing the live compiler's content-addressed
    artifact cache.  Artifacts whose bytes match the repository are
    carried forward instead of re-committed, and the diff's compilation
    read set is handed to the landing strip so a dependency that moved
    under the diff bounces it as a conflict. *)

type outcome =
  | Landed of Cm_vcs.Store.oid
  | Rejected of Defense.rejection
      (** every bouncing layer — compile/validators, the verify stage,
          sandcastle, review, canary, the landing strip — reports
          through the same structured {!Defense.rejection} *)

val outcome_stage : outcome -> string
(** Shim over the old per-stage variants: ["landed"], or the rejecting
    stage — ["compile"], ["verify"], ["sandcastle"], ["review"],
    ["canary"], ["conflict"]. *)

(** {1 The verify stage}

    The {!Cm_verify} correctness plane runs between compile and
    sandcastle.  It is attached as a function so the dependency arrow
    points from [Cm_verify] into the core ([Cm_verify.Verify.attach]
    wires a registry in); a pipeline without a hook behaves exactly as
    before. *)

type verify_input = {
  verify_changes : (string * string) list;  (** the proposed edits *)
  verify_compiled : Compiler.compiled list; (** the compiled cone *)
  verify_tree : Source_tree.t;              (** the proposal clone *)
  verify_depgraph : Depgraph.t;             (** index over the clone *)
  verify_repo : Cm_vcs.Repo.t;              (** for last-landed repairs *)
  verify_validators : Validator.t;          (** for range-based repairs *)
  verify_pool : Cm_parallel.Pool.t option;
      (** the pipeline's domain pool when it runs with [jobs > 1]; the
          stage may fan independent checks out on it, provided the
          verdict list stays identical to its sequential order *)
}

type verify_stage = verify_input -> Defense.verdict list
(** A failing verdict rejects the change (stage ["verify"]); all
    verdicts, passing or not, are posted to the review diff. *)

type t

val create :
  ?reviewers:string list ->
  ?review_delay:float ->
  ?canary_spec:Canary.spec ->
  ?validators:Validator.t ->
  ?landing_mode:Landing_strip.mode ->
  ?verify:verify_stage ->
  ?jobs:int ->
  Cm_sim.Net.t ->
  Cm_zeus.Service.t ->
  Source_tree.t ->
  t
(** Builds the whole stack around an existing source tree: compiler,
    dependency service, review, sandcastle, landing strip on a fresh
    repository, tailer.  Call {!bootstrap} to seed the repository with
    the tree's current contents, then {!start}.

    [jobs] (default 1) sizes the landing path's domain pool: compile
    levels, sandcastle checks and the verify stage fan out across
    [jobs] domains.  [jobs <= 1] builds no pool at all — every stage
    runs its exact sequential code path.  Outcomes are identical
    either way; only wall-clock changes. *)

val set_verify : t -> verify_stage -> unit
(** Attach (or replace) the verify stage after construction. *)

val bootstrap : t -> unit
(** Compiles the whole tree and commits sources + artifacts as the
    initial revision (no review/canary — this is repo setup). *)

val start : t -> unit
(** Starts the tailer poll loop. *)

(** {1 Components (exposed for tests, benches and the mutator)} *)

val tree : t -> Source_tree.t
val compiler : t -> Compiler.t
val depgraph : t -> Depgraph.t
val review : t -> Review.t
val sandcastle : t -> Sandcastle.t
val landing : t -> Landing_strip.t
val repo : t -> Cm_vcs.Repo.t
val tailer : t -> Tailer.t
val zeus : t -> Cm_zeus.Service.t
val engine : t -> Cm_sim.Engine.t

val healthy_sampler : Canary.sampler
(** Baseline application model: low error rate, stable latency and
    CTR, no crashes. *)

val propose :
  t ->
  author:string ->
  ?title:string ->
  ?skip_canary:bool ->
  ?sampler:Canary.sampler ->
  (string * string) list ->
  on_done:(outcome -> unit) ->
  unit
(** Submit a config change: [(source path, new content)] pairs.  The
    pipeline runs asynchronously in simulated time; [on_done] fires
    with the final outcome.  On success the source tree, dependency
    graph and repository are updated, and distribution to the fleet
    proceeds via the tailer. *)

val propose_sync :
  t ->
  author:string ->
  ?title:string ->
  ?skip_canary:bool ->
  ?sampler:Canary.sampler ->
  (string * string) list ->
  outcome
(** Runs the engine until the proposal resolves. *)

val landed_count : t -> int

val jobs : t -> int
(** The configured parallelism (1 when no pool was built). *)

val pool : t -> Cm_parallel.Pool.t option
(** The landing path's domain pool, when [jobs > 1]. *)
