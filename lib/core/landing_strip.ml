module Engine = Cm_sim.Engine
module Tracer = Cm_trace.Tracer

type mode = Landing | Direct

type result =
  | Committed of Cm_vcs.Store.oid
  | Conflict of string list

let conflict_verdicts paths =
  List.map
    (fun path ->
      Defense.fail ~stage:"conflict" ~rule:"stale-read-write" ~path
        "changed since the diff's base; artifacts were compiled against stale inputs")
    paths

type submission = {
  author : string;
  message : string;
  base : Cm_vcs.Store.oid option;
  changes : Cm_vcs.Repo.change list;
}

type cost_model = {
  commit_cost : int -> float;
  pull_cost : int -> float;
}

(* ~0.5 s on an empty repository, ~5 s at 500k files. *)
let default_costs =
  {
    commit_cost = (fun files -> 0.5 +. (float_of_int files *. 9.0e-6));
    pull_cost = (fun files -> 1.0 +. (float_of_int files *. 2.0e-5));
  }

type job = {
  sub : submission;
  reads : string list;
  on_result : result -> unit;
  (* tracer, context and submission time of a traced change; the
     landing span covers queue wait + conflict check + push. *)
  jtrace : (Tracer.t * Tracer.ctx * float) option;
}

type t = {
  mode : mode;
  costs : cost_model;
  engine : Engine.t;
  repo : Cm_vcs.Repo.t;
  queue : job Queue.t;
  mutable busy : bool;
  mutable ncommitted : int;
  mutable nconflicts : int;
  mutable nretries : int;
}

let create ?(mode = Landing) ?(costs = default_costs) engine repo =
  {
    mode;
    costs;
    engine;
    repo;
    queue = Queue.create ();
    busy = false;
    ncommitted = 0;
    nconflicts = 0;
    nretries = 0;
  }

(* The conflict window covers what the diff wrote AND what its
   compilation read: if a dependency of an affected config changed
   under the diff, its carried artifacts would be stale — bounce it. *)
let conflict_paths job = List.map fst job.sub.changes @ job.reads

let rec maybe_start t =
  if (not t.busy) && not (Queue.is_empty t.queue) then begin
    t.busy <- true;
    let job = Queue.pop t.queue in
    match t.mode with
    | Landing -> serve_landing t job
    | Direct -> serve_direct t job
  end

and finish t =
  t.busy <- false;
  maybe_start t

and do_commit t job =
  let files = Cm_vcs.Repo.file_count t.repo in
  ignore
    (Engine.schedule t.engine ~delay:(t.costs.commit_cost files) (fun () ->
         let oid =
           Cm_vcs.Repo.commit t.repo ~author:job.sub.author ~message:job.sub.message
             ~timestamp:(Engine.now t.engine) job.sub.changes
         in
         t.ncommitted <- t.ncommitted + 1;
         (match job.jtrace with
         | Some (tr, ctx, t0) ->
             ignore
               (Tracer.span tr ctx ~name:"landing.commit"
                  ~tags:
                    [ ("files", string_of_int (List.length job.sub.changes)) ]
                  ~t0 ~t1:(Engine.now t.engine) ())
         | None -> ());
         job.on_result (Committed oid);
         finish t))

and serve_landing t job =
  (* The landing strip itself resolves staleness: only true file
     conflicts bounce back to the author.  On the Merkle backend the
     conflict window costs O(commits since base x their changed paths)
     via per-commit change records; on the flat backend it re-diffs
     whole trees, which is what Figure 13 measures. *)
  match Cm_vcs.Repo.conflicts t.repo ~base:job.sub.base ~paths:(conflict_paths job) with
  | [] -> do_commit t job
  | conflicting ->
      t.nconflicts <- t.nconflicts + 1;
      ignore
        (Engine.schedule t.engine ~delay:0.2 (fun () ->
             (match job.jtrace with
             | Some (tr, ctx, t0) ->
                 ignore
                   (Tracer.span tr ctx ~name:"landing.conflict" ~t0
                      ~t1:(Engine.now t.engine) ())
             | None -> ());
             job.on_result (Conflict conflicting);
             finish t))

and serve_direct t job =
  let head = Cm_vcs.Repo.head t.repo in
  if job.sub.base = head then begin
    (* Clone is current: check real conflicts (none possible when base
       equals head) and push. *)
    do_commit t job
  end
  else begin
    (* git rejects the push: the committer must update first, even if
       the files do not overlap.  Pulling happens on the committer's
       machine (does not occupy the shared repository), then the diff
       rejoins the queue — unless the interim commits truly conflict. *)
    match Cm_vcs.Repo.conflicts t.repo ~base:job.sub.base ~paths:(conflict_paths job) with
    | [] ->
        t.nretries <- t.nretries + 1;
        let files = Cm_vcs.Repo.file_count t.repo in
        ignore
          (Engine.schedule t.engine ~delay:(t.costs.pull_cost files) (fun () ->
               let rebased = { job.sub with base = Cm_vcs.Repo.head t.repo } in
               Queue.push { job with sub = rebased } t.queue;
               maybe_start t));
        finish t
    | conflicting ->
        t.nconflicts <- t.nconflicts + 1;
        ignore
          (Engine.schedule t.engine ~delay:0.2 (fun () ->
               job.on_result (Conflict conflicting);
               finish t))
  end

let submit ?(reads = []) ?tracer ?(ctx = Tracer.none) t sub ~on_result =
  let jtrace =
    match tracer with
    | Some tr when Tracer.is_traced ctx -> Some (tr, ctx, Engine.now t.engine)
    | _ -> None
  in
  Queue.push { sub; reads; on_result; jtrace } t.queue;
  maybe_start t

let queue_length t = Queue.length t.queue
let committed t = t.ncommitted
let conflicts_rejected t = t.nconflicts
let retries t = t.nretries
