(** The Landing Strip (§3.6): commits on behalf of committers.

    Diffs are queued first-come-first-served and pushed to the shared
    repository without requiring the committer's clone to be up to
    date.  Only a {e true} conflict — the diff touches a file that
    changed since its base — is rejected back to the author.

    The module also implements the {b direct-commit} baseline for the
    landing-strip ablation: each committer must first bring its clone
    up to date (paying a pull), and any commit that lands meanwhile
    forces another round, even when the files don't overlap — the
    contention spiral the landing strip exists to break. *)

type mode = Landing | Direct

type result =
  | Committed of Cm_vcs.Store.oid
  | Conflict of string list  (** conflicting paths *)

val conflict_verdicts : string list -> Defense.verdict list
(** The unified defense-stage view of a conflict rejection: one
    failing stage-["conflict"] verdict per conflicting path. *)

type submission = {
  author : string;
  message : string;
  base : Cm_vcs.Store.oid option;  (** head of the author's clone *)
  changes : Cm_vcs.Repo.change list;
}

type cost_model = {
  commit_cost : int -> float;
      (** seconds to push one commit, as a function of repository file
          count — "git is slow on a large repository" *)
  pull_cost : int -> float;
      (** seconds to bring a stale clone up to date (Direct mode) *)
}

val default_costs : cost_model
(** Calibrated to the paper's §6.3: ~5 s to commit at a repository
    size of hundreds of thousands of files. *)

type t

val create :
  ?mode:mode ->
  ?costs:cost_model ->
  Cm_sim.Engine.t ->
  Cm_vcs.Repo.t ->
  t

val submit :
  ?reads:string list ->
  ?tracer:Cm_trace.Tracer.t ->
  ?ctx:Cm_trace.Tracer.ctx ->
  t ->
  submission ->
  on_result:(result -> unit) ->
  unit
(** Queues a diff; the callback fires when it lands or is rejected.
    With [tracer]/[ctx] set, a [landing.commit] (or
    [landing.conflict]) span covering queue wait + push is recorded
    under the change's trace.

    [reads] is the diff's compilation read set: source paths the
    produced artifacts depend on but that the diff does not itself
    write (e.g. imported [.cinc] modules of the affected cone).  A
    change to a read path since [base] is treated as a conflict — the
    diff's artifacts were compiled against stale inputs, so carrying
    them forward would commit an inconsistent artifact set. *)

val queue_length : t -> int
val committed : t -> int
val conflicts_rejected : t -> int
val retries : t -> int
(** Direct mode only: extra update rounds forced by contention. *)
