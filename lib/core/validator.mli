(** Config validators: invariants checked by the compiler on every
    config of a given type (§3.3, first line of defense).

    Two forms coexist, as in the paper:
    - {b combinator validators}, registered programmatically by the
      team owning the schema ("the scheduler team ... provides the
      validator job.thrift-cvalidator, which ensures that configs
      provided by other teams do not accidentally break the
      scheduler");
    - {b source validators}, CSL files named
      ["<Type>.thrift-cvalidator"] that define
      [def validate(cfg) = <bool expr>] and are discovered
      automatically from the source tree. *)

type check_result = Pass | Fail of string
(** The per-rule primitive.  Stage-level results are reported through
    the unified {!Defense.verdict} API — see {!verdicts}. *)

type rule = {
  rule_name : string;
  check : Cm_thrift.Value.t -> check_result;
  range : (string * int * int) option;
      (** [(field, min, max)] for rules that declare a numeric
          invariant — the raw material for {!Cm_verify}'s
          nearest-passing-value repair suggestions *)
}

(** {1 Combinators} *)

val rule : ?range:string * int * int -> string -> (Cm_thrift.Value.t -> check_result) -> rule

val field_int_range : field:string -> min:int -> max:int -> rule
(** Integer field within bounds (missing field passes — requiredness
    is the schema checker's job). *)

val field_nonempty_string : field:string -> rule
val field_string_in : field:string -> allowed:string list -> rule
val field_list_max_length : field:string -> max:int -> rule

val forbid_field_value : field:string -> Cm_thrift.Value.t -> reason:string -> rule

val all : rule list -> rule
(** Conjunction; fails with the first failing sub-rule's message. *)

(** {1 Registry} *)

type t

val create : unit -> t

val register : t -> type_name:string -> rule -> unit
(** Attach a combinator rule to a struct type.  Multiple rules per
    type accumulate. *)

val of_source : type_name:string -> source:string -> (rule, string) result
(** Compile a CSL validator source: must define [validate] taking the
    config and returning a bool (or a string, interpreted as a
    failure message; empty string = pass). *)

val register_source : t -> type_name:string -> source:string -> (unit, string) result

val validate : t -> type_name:string -> Cm_thrift.Value.t -> check_result
(** Runs every rule registered for the type; [Pass] when none is
    registered. *)

val verdicts :
  t -> type_name:string -> path:string -> Cm_thrift.Value.t -> Defense.verdict list
(** The unified defense-stage surface: one {!Defense.verdict} (stage
    ["validator"]) per registered rule, passing or failing. *)

val declared_ranges : t -> type_name:string -> (string * (int * int)) list
(** Numeric invariants declared for a type via {!field_int_range} —
    [(field, (min, max))] pairs.  Rules folded through {!all} do not
    surface their ranges. *)

val registered_types : t -> string list
