(** The config source tree: every file an engineer (or automation
    tool) edits, keyed by repository path.

    File kinds follow the paper's naming (Figure 2):
    - [*.cconf]      — a config program whose export becomes one JSON config
    - [*.cinc]       — a reusable module imported by other sources
    - [*.thrift]     — a schema
    - [*.cvalidator] — a validator program bound to a schema type
    - anything else  — a "raw config" distributed as-is *)

type kind = Cconf | Cinc | Thrift | Cvalidator | Raw

val kind_of_path : string -> kind

type t

val create : unit -> t
val of_alist : (string * string) list -> t

val copy : t -> t
(** O(files) shallow copy — contents are immutable strings, so the
    copy is independent for write/remove purposes.  Cheaper than
    [of_alist (snapshot t)], which also sorts. *)

val write : t -> string -> string -> unit
val remove : t -> string -> unit
val read : t -> string -> string option
val mem : t -> string -> bool
val paths : t -> string list
(** Sorted. *)

val paths_of_kind : t -> kind -> string list
val count : t -> int

val loader : t -> string -> string option
(** The import resolver handed to {!Cm_lang.Eval.run}: resolves both
    relative siblings and absolute repository paths. *)

val snapshot : t -> (string * string) list
(** Sorted [(path, content)] pairs — what gets committed. *)
