module Engine = Cm_sim.Engine

type outcome =
  | Landed of Cm_vcs.Store.oid
  | Rejected of Defense.rejection

(* Thin shim over the old six-variant interface: callers that only
   dispatched on the stage keep working unchanged. *)
let outcome_stage = function
  | Landed _ -> "landed"
  | Rejected r -> r.Defense.failed_stage

type verify_input = {
  verify_changes : (string * string) list;
  verify_compiled : Compiler.compiled list;
  verify_tree : Source_tree.t;
  verify_depgraph : Depgraph.t;
  verify_repo : Cm_vcs.Repo.t;
  verify_validators : Validator.t;
  verify_pool : Cm_parallel.Pool.t option;
      (* the pipeline's domain pool, when it runs with [jobs > 1]: the
         verify stage may fan independent checks out on it, as long as
         its verdict list stays identical to the sequential order *)
}

type verify_stage = verify_input -> Defense.verdict list

type t = {
  net : Cm_sim.Net.t;
  pzeus : Cm_zeus.Service.t;
  ptree : Source_tree.t;
  pcompiler : Compiler.t;
  pdep : Depgraph.t;
  preview : Review.t;
  psandcastle : Sandcastle.t;
  planding : Landing_strip.t;
  prepo : Cm_vcs.Repo.t;
  ptailer : Tailer.t;
  reviewers : string list;
  review_delay : float;
  canary_spec : Canary.spec;
  ppool : Cm_parallel.Pool.t option;
  pjobs : int;
  mutable pverify : verify_stage option;
  mutable nlanded : int;
}

let create ?(reviewers = [ "alice"; "bob"; "carol" ]) ?(review_delay = 120.0)
    ?(canary_spec = Canary.default_spec) ?validators ?(landing_mode = Landing_strip.Landing)
    ?verify ?(jobs = 1) net zeus tree =
  let engine = Cm_sim.Net.engine net in
  let repo = Cm_vcs.Repo.create () in
  (* [jobs <= 1] keeps the exact sequential landing path — no pool is
     constructed, so every stage takes its pre-multicore code path. *)
  let jobs = max 1 jobs in
  let pool = if jobs > 1 then Some (Cm_parallel.Pool.create ~domains:jobs ()) else None in
  (* One compiler for the live tree; it owns the dependency index and
     the content-addressed artifact cache.  Proposal clones share the
     cache (keys are closure hashes, so sharing across trees is sound)
     and copy the index instead of re-scanning. *)
  let compiler = Compiler.create ?validators tree in
  {
    net;
    pzeus = zeus;
    ptree = tree;
    pcompiler = compiler;
    pdep = Compiler.depgraph compiler;
    preview = Review.create ();
    psandcastle = Sandcastle.create ();
    planding = Landing_strip.create ~mode:landing_mode engine repo;
    prepo = repo;
    ptailer = Tailer.create engine repo zeus;
    reviewers;
    review_delay;
    canary_spec;
    ppool = pool;
    pjobs = jobs;
    pverify = verify;
    nlanded = 0;
  }

let set_verify t stage = t.pverify <- Some stage

let tree t = t.ptree
let compiler t = t.pcompiler
let depgraph t = t.pdep
let review t = t.preview
let sandcastle t = t.psandcastle
let landing t = t.planding
let repo t = t.prepo
let tailer t = t.ptailer
let zeus t = t.pzeus
let engine t = Cm_sim.Net.engine t.net
let landed_count t = t.nlanded
let jobs t = t.pjobs
let pool t = t.ppool

let bootstrap t =
  let compiled, errors = Compiler.compile_all ?pool:t.ppool t.pcompiler in
  (match errors with
  | [] -> ()
  | e :: _ ->
      invalid_arg (Format.asprintf "Pipeline.bootstrap: tree does not compile: %a"
                     Compiler.pp_error e));
  let sources =
    List.map (fun (path, content) -> path, Some content) (Source_tree.snapshot t.ptree)
  in
  let artifacts =
    List.filter_map
      (fun c ->
        if c.Compiler.artifact_path = c.Compiler.config_path then None
        else Some (c.Compiler.artifact_path, Some c.Compiler.json_text))
      compiled
  in
  if sources <> [] then
    ignore
      (Cm_vcs.Repo.commit t.prepo ~author:"bootstrap" ~message:"initial import"
         ~timestamp:(Engine.now (engine t)) (sources @ artifacts))

let start t = Tailer.start t.ptailer

let healthy_sampler ~node:_ ~test:_ ~cohort:_ =
  [ "error_rate", 0.01; "latency_ms", 100.0; "ctr", 0.05; "crashes", 0.0 ]

let pick_reviewer t ~author =
  match List.find_opt (fun r -> not (String.equal r author)) t.reviewers with
  | Some r -> r
  | None -> "oncall"

let propose t ~author ?(title = "config change") ?(skip_canary = false) ?sampler changes
    ~on_done =
  let eng = engine t in
  let sampler = match sampler with Some s -> s | None -> healthy_sampler in
  (* End-to-end tracing: one trace per proposed change, rooted here
     and carried through review, canary, landing, the tailer and the
     Zeus fan-out (see Cm_trace).  Untraced unless a tracer is
     attached to the net. *)
  let tracer = Cm_sim.Net.tracer t.net in
  let t_submit = Engine.now eng in
  let root_ctx =
    match tracer with
    | Some tr -> Cm_trace.Tracer.new_trace tr ~name:("change:" ^ title)
    | None -> Cm_trace.Tracer.none
  in
  let stage_span name ?tags t0 ctx =
    match tracer with
    | Some tr -> Cm_trace.Tracer.span tr ctx ~name ?tags ~t0 ~t1:(Engine.now eng) ()
    | None -> ctx
  in
  (* 1. The author edits a development clone of the tree. *)
  let clone = Source_tree.copy t.ptree in
  List.iter (fun (path, content) -> Source_tree.write clone path content) changes;
  (* 2. Compile only the affected cone, incrementally (validators run
     inside).  The clone copies the live dependency index instead of
     re-scanning the whole tree, and shares the live compiler's
     content-addressed artifact cache: configs inside the cone whose
     closure bytes did not actually change are cache hits. *)
  let changed_paths = List.map fst changes in
  let clone_compiler =
    Compiler.create
      ~validators:(Compiler.validators t.pcompiler)
      ~cache:(Compiler.cache t.pcompiler)
      ~depgraph:(Depgraph.copy t.pdep)
      clone
  in
  let compiled, errors =
    Compiler.compile_affected ?pool:t.ppool clone_compiler ~changed:changed_paths
  in
  (* Per-config canary spec: "a config is associated with a canary
     spec"; a "<path>.canary" file in the tree overrides the default. *)
  let spec_result =
    let rec find = function
      | [] -> Ok t.canary_spec
      | path :: rest -> (
          match Source_tree.read clone (path ^ ".canary") with
          | None -> find rest
          | Some text -> (
              match Canary.spec_of_string text with
              | Ok spec -> Ok spec
              | Error message ->
                  Error
                    {
                      Compiler.at = path ^ ".canary";
                      stage = Compiler.Validation;
                      message;
                    }))
    in
    find (List.map fst changes)
  in
  let errors =
    match spec_result with Ok _ -> errors | Error e -> errors @ [ e ]
  in
  let root_ctx =
    stage_span "pipeline.compile"
      ~tags:
        [
          ("configs", string_of_int (List.length compiled));
          ("errors", string_of_int (List.length errors));
        ]
      t_submit root_ctx
  in
  if errors <> [] then
    on_done
      (Rejected (Defense.reject ~stage:"compile" (List.map Compiler.verdict_of_error errors)))
  else begin
    (* 2b. The verify stage (Cm_verify correctness plane) sits between
       compile and sandcastle: static cross-artifact checks and config
       tests run over the compiled cone.  Attached as a function so the
       dependency arrow points from Cm_verify into the core, not the
       other way around. *)
    let t_verify = Engine.now eng in
    let verify_report =
      match t.pverify with
      | None -> []
      | Some stage ->
          stage
            {
              verify_changes = changes;
              verify_compiled = compiled;
              verify_tree = clone;
              verify_depgraph = Compiler.depgraph clone_compiler;
              verify_repo = t.prepo;
              verify_validators = Compiler.validators t.pcompiler;
              verify_pool = t.ppool;
            }
    in
    let root_ctx =
      match t.pverify with
      | None -> root_ctx
      | Some _ ->
          stage_span "pipeline.verify"
            ~tags:[ ("passed", string_of_bool (Defense.all_passed verify_report)) ]
            t_verify root_ctx
    in
    if not (Defense.all_passed verify_report) then begin
      (* Rejected before CI — but the verdicts (and any attached
         repair suggestions) are still surfaced through the review
         tool, like sandcastle results would be. *)
      let base = Cm_vcs.Repo.head t.prepo in
      let repo_changes = List.map (fun (path, content) -> path, Some content) changes in
      let diff_id = Review.submit t.preview ~author ~title ~base repo_changes in
      List.iter (Review.post_verdict t.preview diff_id) verify_report;
      on_done (Rejected (Defense.reject ~stage:"verify" verify_report))
    end
    else begin
    let canary_spec = match spec_result with Ok s -> s | Error _ -> t.canary_spec in
    (* 3. Sandcastle CI in a sandbox; results are posted to the diff. *)
    let t_ci = Engine.now eng in
    let report = Sandcastle.run ?pool:t.ppool t.psandcastle compiled in
    let root_ctx =
      stage_span "pipeline.sandcastle"
        ~tags:[ ("passed", string_of_bool (Sandcastle.passed report)) ]
        t_ci root_ctx
    in
    let base = Cm_vcs.Repo.head t.prepo in
    (* Artifacts byte-identical to what the repository already holds
       are carried forward rather than re-written: a cone member whose
       compile was a cache hit produces the committed bytes again, and
       committing them would only create no-op churn downstream. *)
    let repo_changes =
      List.map (fun (path, content) -> path, Some content) changes
      @ List.filter_map
          (fun c ->
            if c.Compiler.artifact_path = c.Compiler.config_path then None
            else
              match Cm_vcs.Repo.read_file t.prepo c.Compiler.artifact_path with
              | Some existing when String.equal existing c.Compiler.json_text -> None
              | _ -> Some (c.Compiler.artifact_path, Some c.Compiler.json_text))
          compiled
    in
    (* The compilation read set: sources the carried/committed artifacts
       depend on but that the diff itself does not write.  The landing
       strip treats a change to a read path since [base] as a conflict,
       so a consistent artifact set always lands. *)
    let reads =
      List.filter
        (fun path -> not (List.mem path changed_paths))
        (List.sort_uniq String.compare
           (List.concat_map
              (fun c -> c.Compiler.config_path :: c.Compiler.deps)
              compiled))
    in
    let diff_id = Review.submit t.preview ~author ~title ~base repo_changes in
    Sandcastle.post_to_review t.preview diff_id report;
    (* Verify-stage verdicts join the diff's test record too, so a
       reviewer sees the whole defense picture in one place. *)
    List.iter (Review.post_verdict t.preview diff_id) verify_report;
    (* Schema-change safety: when a .thrift source changes, compare the
       new schema against the committed one and surface breaking
       changes — the §6.4 incident where old client code could not
       read a config written under a new schema. *)
    List.iter
      (fun (path, content) ->
        if Source_tree.kind_of_path path = Source_tree.Thrift then
          match Source_tree.read t.ptree path, Cm_thrift.Idl.parse content with
          | Some old_source, Ok new_schema -> (
              match Cm_thrift.Idl.parse old_source with
              | Ok old_schema ->
                  let issues =
                    List.filter
                      (fun issue -> issue.Cm_thrift.Compat.breaking)
                      (Cm_thrift.Compat.can_read ~reader:old_schema ~writer:new_schema)
                  in
                  if issues <> [] then
                    Review.post_test_result t.preview diff_id
                      ~name:(Printf.sprintf "schema-compat:%s" path)
                      ~passed:false
                      ~detail:
                        (String.concat "; "
                           (List.map
                              (fun issue ->
                                Format.asprintf "%a" Cm_thrift.Compat.pp_issue issue)
                              issues))
              | Error _ -> ())
          | _ -> ())
      changes;
    (* §8 future work, implemented: flag high-risk updates on the diff
       from historical data.  Informational — reviewers decide. *)
    let now_days = Engine.now eng /. 86400.0 in
    List.iter
      (fun (path, content) ->
        let history = Risk.history_of_repo t.prepo t.pdep ~path ~now:now_days in
        let assessment =
          Risk.assess ~history ~now:now_days ~old_text:(Source_tree.read t.ptree path)
            ~new_text:content ~author ()
        in
        if assessment.Risk.level <> Risk.Low then
          Review.post_test_result t.preview diff_id
            ~name:(Printf.sprintf "risk-flag:%s" path)
            ~passed:true
            ~detail:(Format.asprintf "%a" Risk.pp assessment))
      changes;
    if not (Sandcastle.passed report) then
      on_done (Rejected (Defense.reject ~stage:"sandcastle" report))
    else begin
      (* 4. Human review after a delay. *)
      let t_review = Engine.now eng in
      ignore
        (Engine.schedule eng ~delay:t.review_delay (fun () ->
             let reviewer = pick_reviewer t ~author in
             match Review.approve t.preview diff_id ~reviewer with
             | Error reason ->
                 on_done
                   (Rejected
                      (Defense.reject ~stage:"review"
                         [ Defense.fail ~stage:"review" ~rule:"approval" reason ]))
             | Ok () ->
                 let ctx =
                   stage_span "pipeline.review"
                     ~tags:[ ("reviewer", reviewer) ]
                     t_review root_ctx
                 in
                 (* 5. Automated canary. *)
                 let continue_to_landing ctx =
                   Landing_strip.submit ~reads ?tracer ~ctx t.planding
                     { Landing_strip.author; message = title; base; changes = repo_changes }
                     ~on_result:(fun result ->
                       match result with
                       | Landing_strip.Conflict paths ->
                           on_done
                             (Rejected
                                (Defense.reject ~stage:"conflict"
                                   (Landing_strip.conflict_verdicts paths)))
                       | Landing_strip.Committed oid ->
                           (* The change is in: update the live tree and
                              dependency index; the tailer distributes.
                              Park the trace context with the tailer so
                              distribution lands in the same trace. *)
                           List.iter
                             (fun (path, _) -> Tailer.note_ctx t.ptailer ~path ctx)
                             repo_changes;
                           List.iter
                             (fun (path, content) -> Source_tree.write t.ptree path content)
                             changes;
                           Compiler.note_changed t.pcompiler changed_paths;
                           t.nlanded <- t.nlanded + 1;
                           on_done (Landed oid))
                 in
                 if skip_canary then continue_to_landing ctx
                 else begin
                   let t_canary = Engine.now eng in
                   Canary.run ~spec:canary_spec ?tracer ~ctx eng
                     (Cm_sim.Net.topology t.net) ~sampler
                     ~on_done:(fun canary_outcome ->
                       match canary_outcome with
                       | Canary.Failed failure ->
                           on_done
                             (Rejected
                                (Defense.reject ~stage:"canary"
                                   [ Canary.verdict_of_failure failure ]))
                       | Canary.Passed ->
                           continue_to_landing
                             (stage_span "pipeline.canary" t_canary ctx))
                     ()
                 end))
    end
    end
  end

let propose_sync t ~author ?title ?skip_canary ?sampler changes =
  let result = ref None in
  propose t ~author ?title ?skip_canary ?sampler changes
    ~on_done:(fun outcome -> result := Some outcome);
  let eng = engine t in
  let rec drive () =
    match !result with
    | Some outcome -> outcome
    | None ->
        if Engine.step eng then drive ()
        else invalid_arg "Pipeline.propose_sync: simulation drained without outcome"
  in
  drive ()
