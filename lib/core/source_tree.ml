type kind = Cconf | Cinc | Thrift | Cvalidator | Raw

let kind_of_path path =
  let ends_with suffix =
    let n = String.length path and m = String.length suffix in
    n >= m && String.sub path (n - m) m = suffix
  in
  if ends_with ".cconf" then Cconf
  else if ends_with ".cinc" then Cinc
  else if ends_with "cvalidator" then Cvalidator (* "<Type>.thrift-cvalidator" *)
  else if ends_with ".thrift" then Thrift
  else Raw

type t = { files : (string, string) Hashtbl.t }

let create () = { files = Hashtbl.create 64 }

let of_alist entries =
  let t = create () in
  List.iter (fun (path, content) -> Hashtbl.replace t.files path content) entries;
  t

let copy t = { files = Hashtbl.copy t.files }
let write t path content = Hashtbl.replace t.files path content
let remove t path = Hashtbl.remove t.files path
let read t path = Hashtbl.find_opt t.files path
let mem t path = Hashtbl.mem t.files path

let paths t =
  List.sort String.compare (Hashtbl.fold (fun path _ acc -> path :: acc) t.files [])

let paths_of_kind t kind = List.filter (fun path -> kind_of_path path = kind) (paths t)
let count t = Hashtbl.length t.files

let loader t target =
  match read t target with
  | Some content -> Some content
  | None ->
      (* Allow repo-absolute form with a leading slash. *)
      if String.length target > 0 && target.[0] = '/' then
        read t (String.sub target 1 (String.length target - 1))
      else None

let snapshot t =
  List.sort
    (fun (a, _) (b, _) -> String.compare a b)
    (Hashtbl.fold (fun path content acc -> (path, content) :: acc) t.files [])
