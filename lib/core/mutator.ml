type t = { pipeline : Pipeline.t; mutable nmutations : int }

let create pipeline = { pipeline; nmutations = 0 }
let read t path = Source_tree.read (Pipeline.tree t.pipeline) path

let set_raw t ~tool ~path ~content ~on_done =
  t.nmutations <- t.nmutations + 1;
  Pipeline.propose t.pipeline ~author:tool ~title:(tool ^ " update " ^ path)
    ~skip_canary:true [ path, content ] ~on_done

let transform t ~tool ~path ~f ?(skip_canary = false) ?sampler ~on_done () =
  match read t path with
  | None -> invalid_arg ("Mutator.transform: no such file " ^ path)
  | Some current ->
      t.nmutations <- t.nmutations + 1;
      Pipeline.propose t.pipeline ~author:tool ~title:(tool ^ " update " ^ path)
        ~skip_canary ?sampler
        [ path, f current ]
        ~on_done

let rollback t ~tool ~path ~on_done =
  let repo = Pipeline.repo t.pipeline in
  (* Last two revisions of the file, straight off the per-path
     history index (newest first). *)
  let revisions =
    List.filter_map
      (fun (oid, _) -> Cm_vcs.Repo.read_file ~rev:oid repo path)
      (Cm_vcs.Repo.path_history repo path)
  in
  match revisions with
  | _current :: previous :: _ ->
      t.nmutations <- t.nmutations + 1;
      Pipeline.propose t.pipeline ~author:tool
        ~title:(Printf.sprintf "%s EMERGENCY ROLLBACK of %s" tool path)
        ~skip_canary:true
        [ path, previous ]
        ~on_done
  | _ -> invalid_arg ("Mutator.rollback: no previous version of " ^ path)

let mutations t = t.nmutations
