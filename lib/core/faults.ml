module Rng = Cm_sim.Rng

type error_type = Type_i | Type_ii | Type_iii

let error_type_name = function
  | Type_i -> "Type I (common config error)"
  | Type_ii -> "Type II (subtle config error)"
  | Type_iii -> "Type III (valid config exposing code bug)"

type injected = {
  etype : error_type;
  validator_visible : bool;
  verify_visible : bool;
  reviewer_catches : bool;
  sampler : Canary.sampler;
}

type rates = {
  share_type_i : float;
  share_type_ii : float;
  p_validator_covers : float;
  p_verify_static : float;
  p_config_test_covers : float;
  p_reviewer_catches : float;
  p_canary_small_catches : float;
  p_canary_cluster_catches : float;
  p_bug_manifests : float;
}

let default_rates =
  {
    share_type_i = 0.85;
    share_type_ii = 0.11;
    p_validator_covers = 0.60;
    p_verify_static = 0.45;
    p_config_test_covers = 0.40;
    p_reviewer_catches = 0.25;
    p_canary_small_catches = 0.85;
    p_canary_cluster_catches = 0.70;
    p_bug_manifests = 0.45;
  }

let noisy rng base spread = base *. (1.0 +. Rng.normal rng ~mu:0.0 ~sigma:spread)

let healthy rng ~node:_ ~test:_ ~cohort:_ =
  [
    "error_rate", Float.max 0.0 (noisy rng 0.01 0.10);
    "latency_ms", Float.max 1.0 (noisy rng 100.0 0.05);
    "ctr", Float.max 0.0 (noisy rng 0.05 0.05);
    "crashes", 0.0;
  ]

let type_i_sampler rng ~detectable ~node ~test ~cohort =
  if test && detectable then
    [
      (* An obvious breakage: requests to the wrong cluster fail. *)
      "error_rate", Float.max 0.0 (noisy rng 0.15 0.10);
      "latency_ms", Float.max 1.0 (noisy rng 110.0 0.05);
      "ctr", Float.max 0.0 (noisy rng 0.045 0.05);
      "crashes", 0.0;
    ]
  else healthy rng ~node ~test ~cohort

let type_ii_sampler rng ~detectable ~node ~test ~cohort =
  if test && detectable && cohort > 50 then begin
    (* Load-dependent: every extra server on the new config sends the
       rare-code-path traffic at the backing store; latency climbs
       with the cohort.  Twenty canary servers sit below the knee. *)
    let overload = 1.0 +. (float_of_int cohort /. 150.0) in
    [
      "error_rate", Float.max 0.0 (noisy rng (0.01 *. overload) 0.10);
      "latency_ms", Float.max 1.0 (noisy rng (100.0 *. overload) 0.05);
      "ctr", Float.max 0.0 (noisy rng 0.05 0.05);
      "crashes", 0.0;
    ]
  end
  else healthy rng ~node ~test ~cohort

let type_iii_sampler rng ~manifests ~node ~test ~cohort =
  if test && manifests then
    [
      "error_rate", Float.max 0.0 (noisy rng 0.02 0.10);
      "latency_ms", Float.max 1.0 (noisy rng 100.0 0.05);
      "ctr", Float.max 0.0 (noisy rng 0.05 0.05);
      (* The race condition fires: instances crash on the new path. *)
      "crashes", 1.0;
    ]
  else healthy rng ~node ~test ~cohort

let inject rng rates =
  let draw = Rng.float rng 1.0 in
  if draw < rates.share_type_i then
    let validator_visible = Rng.bernoulli rng rates.p_validator_covers in
    (* A statically checkable invariant nobody declared as a validator:
       the verify stage's cross-artifact checks see it. *)
    let verify_visible =
      (not validator_visible) && Rng.bernoulli rng rates.p_verify_static
    in
    (* Independent of [verify_visible]: the reviewer would spot the
       error whether or not a verify stage already flagged it, so a
       pipeline without the verify stage behaves exactly as before. *)
    let reviewer_catches =
      (not validator_visible) && Rng.bernoulli rng rates.p_reviewer_catches
    in
    let detectable = Rng.bernoulli rng rates.p_canary_small_catches in
    {
      etype = Type_i;
      validator_visible;
      verify_visible;
      reviewer_catches;
      sampler = type_i_sampler rng ~detectable;
    }
  else if draw < rates.share_type_i +. rates.share_type_ii then
    (* Subtle errors hide from static inspection, but a registered
       config test runs real consumer code against the proposed value
       and can trip over them. *)
    let verify_visible = Rng.bernoulli rng rates.p_config_test_covers in
    let detectable = Rng.bernoulli rng rates.p_canary_cluster_catches in
    {
      etype = Type_ii;
      validator_visible = false;
      verify_visible;
      reviewer_catches = false;
      sampler = type_ii_sampler rng ~detectable;
    }
  else
    let manifests = Rng.bernoulli rng rates.p_bug_manifests in
    {
      etype = Type_iii;
      validator_visible = false;
      (* The config is valid; the bug lives in consumer code the
         registered tests do not exercise. *)
      verify_visible = false;
      reviewer_catches = false;
      sampler = type_iii_sampler rng ~manifests;
    }
