type t = {
  deps : (string, string list) Hashtbl.t;      (* file -> imports *)
  rdeps : (string, string list ref) Hashtbl.t; (* file -> importers *)
}

let create () = { deps = Hashtbl.create 64; rdeps = Hashtbl.create 64 }

let copy t =
  let rdeps = Hashtbl.create (max 64 (Hashtbl.length t.rdeps)) in
  Hashtbl.iter (fun path importers -> Hashtbl.replace rdeps path (ref !importers)) t.rdeps;
  { deps = Hashtbl.copy t.deps; rdeps }

(* Unresolvable targets keep an edge under their literal spelling, so
   that creating the missing file later still invalidates importers. *)
let normalize tree target =
  if Source_tree.mem tree target then target
  else if String.length target > 0 && target.[0] = '/' then begin
    let stripped = String.sub target 1 (String.length target - 1) in
    if Source_tree.mem tree stripped then stripped else target
  end
  else target

let extract tree path =
  match Source_tree.read tree path with
  | None -> []
  | Some source -> (
      match Source_tree.kind_of_path path with
      | Source_tree.Thrift | Source_tree.Raw -> []
      | Source_tree.Cconf | Source_tree.Cinc | Source_tree.Cvalidator -> (
          match Cm_lang.Parser.parse source with
          | Error _ -> []
          | Ok file ->
              List.map
                (fun import ->
                  match import with
                  | `Csl target | `Thrift target -> normalize tree target)
                (Cm_lang.Ast.imports file)))

let unlink t path =
  match Hashtbl.find_opt t.deps path with
  | None -> ()
  | Some old ->
      List.iter
        (fun dep ->
          match Hashtbl.find_opt t.rdeps dep with
          | Some importers -> importers := List.filter (fun p -> p <> path) !importers
          | None -> ())
        old;
      Hashtbl.remove t.deps path

let link t path imports =
  Hashtbl.replace t.deps path imports;
  List.iter
    (fun dep ->
      match Hashtbl.find_opt t.rdeps dep with
      | Some importers -> if not (List.mem path !importers) then importers := path :: !importers
      | None -> Hashtbl.replace t.rdeps dep (ref [ path ]))
    imports

let update_file t tree path =
  unlink t path;
  if Source_tree.mem tree path then link t path (extract tree path)

let scan t tree =
  Hashtbl.reset t.deps;
  Hashtbl.reset t.rdeps;
  List.iter (fun path -> link t path (extract tree path)) (Source_tree.paths tree)

let direct_deps t path =
  match Hashtbl.find_opt t.deps path with Some imports -> imports | None -> []

let dependents t path =
  match Hashtbl.find_opt t.rdeps path with
  | Some importers -> List.sort String.compare !importers
  | None -> []

let is_config path =
  match Source_tree.kind_of_path path with
  | Source_tree.Cconf | Source_tree.Raw -> true
  | Source_tree.Cinc | Source_tree.Thrift | Source_tree.Cvalidator -> false

let affected_configs t changed =
  let visited = Hashtbl.create 32 in
  let configs = Hashtbl.create 32 in
  let rec walk path =
    if not (Hashtbl.mem visited path) then begin
      Hashtbl.replace visited path ();
      if is_config path then Hashtbl.replace configs path ();
      List.iter walk (dependents t path)
    end
  in
  List.iter walk changed;
  (* Validators guard every config of their type, not just their static
     importers, and the type binding is only known post-compile — so a
     change reaching any validator conservatively dirties every compiled
     config. *)
  let validator_touched =
    Hashtbl.fold
      (fun path () acc ->
        acc || Source_tree.kind_of_path path = Source_tree.Cvalidator)
      visited false
  in
  if validator_touched then
    Hashtbl.iter
      (fun path _ ->
        if Source_tree.kind_of_path path = Source_tree.Cconf then
          Hashtbl.replace configs path ())
      t.deps;
  List.sort String.compare (Hashtbl.fold (fun path () acc -> path :: acc) configs [])

let transitive_deps t path =
  let visited = Hashtbl.create 32 in
  let rec walk current =
    List.iter
      (fun dep ->
        if not (Hashtbl.mem visited dep) then begin
          Hashtbl.replace visited dep ();
          walk dep
        end)
      (direct_deps t current)
  in
  walk path;
  List.sort String.compare (Hashtbl.fold (fun dep () acc -> dep :: acc) visited [])

(* Level-order scheduling for the parallel compile plane: partition a
   set of paths so that a path lands strictly after every member of
   the set it (transitively) imports.  Within a level no member
   depends on another, so a domain pool may compile a whole level
   concurrently; levels are emitted in dependency order and each level
   is sorted, making the schedule a pure function of the graph.  For
   the common case — configs that only share [.cinc]/[.thrift]
   modules, never import each other — this is a single level. *)
let levels t paths =
  let paths = List.sort_uniq String.compare paths in
  match paths with
  | [] -> []
  | _ ->
      let in_set = Hashtbl.create (List.length paths) in
      List.iter (fun p -> Hashtbl.replace in_set p ()) paths;
      let depth = Hashtbl.create (List.length paths) in
      let rec depth_of p =
        match Hashtbl.find_opt depth p with
        | Some d -> d
        | None ->
            (* Pre-mark so an import cycle (possible in unparseable or
               adversarial trees) terminates at depth 0 instead of
               recursing forever. *)
            Hashtbl.replace depth p 0;
            let d =
              List.fold_left
                (fun acc dep ->
                  if Hashtbl.mem in_set dep && not (String.equal dep p) then
                    max acc (1 + depth_of dep)
                  else acc)
                0 (transitive_deps t p)
            in
            Hashtbl.replace depth p d;
            d
      in
      let max_depth = List.fold_left (fun acc p -> max acc (depth_of p)) 0 paths in
      let buckets = Array.make (max_depth + 1) [] in
      (* [paths] is sorted ascending; consing reverses, so reverse once
         per bucket below to keep each level sorted. *)
      List.iter (fun p -> buckets.(depth_of p) <- p :: buckets.(depth_of p)) paths;
      Array.to_list (Array.map List.rev buckets)

let file_count t = Hashtbl.length t.deps
