type check = {
  check_name : string;
  run : Compiler.compiled list -> bool * string;
}

type report = (string * bool * string) list

type t = {
  mutable checks : check list;
  validated : (string, unit) Hashtbl.t; (* artifact content keys that passed *)
  mutable nskipped : int;
}

(* The digest covers the distributed bytes; type/schema hash join the
   key because checks also inspect the typing metadata. *)
let artifact_key c =
  String.concat ":"
    [
      c.Compiler.digest;
      Option.value ~default:"" c.Compiler.type_name;
      Option.value ~default:"" c.Compiler.schema_hash;
    ]

let inline_size_limit = 1024 * 1024

let default_checks () =
  [
    {
      check_name = "json-roundtrip";
      run =
        (fun artifacts ->
          let bad =
            List.filter
              (fun c ->
                match Cm_json.Parser.parse c.Compiler.json_text with
                | Ok parsed -> not (Cm_json.Value.equal parsed c.Compiler.json)
                | Error _ ->
                    (* Raw non-JSON configs are stored as strings and
                       are exempt from the round-trip requirement. *)
                    c.Compiler.type_name <> None)
              artifacts
          in
          if bad = [] then true, "all artifacts round-trip"
          else
            ( false,
              "non-round-tripping artifacts: "
              ^ String.concat ", " (List.map (fun c -> c.Compiler.artifact_path) bad) ));
    };
    {
      check_name = "size-limit";
      run =
        (fun artifacts ->
          let oversize =
            List.filter
              (fun c -> String.length c.Compiler.json_text > inline_size_limit)
              artifacts
          in
          if oversize = [] then true, "all artifacts within inline size limit"
          else
            ( false,
              "artifacts above 1MB (use PackageVessel): "
              ^ String.concat ", " (List.map (fun c -> c.Compiler.artifact_path) oversize) ));
    };
    {
      check_name = "no-empty-export";
      run =
        (fun artifacts ->
          let empty =
            List.filter
              (fun c ->
                match c.Compiler.json with
                | Cm_json.Value.Assoc [] -> true
                | _ -> false)
              artifacts
          in
          if empty = [] then true, "no empty exports"
          else
            ( false,
              "empty exports: "
              ^ String.concat ", " (List.map (fun c -> c.Compiler.artifact_path) empty) ));
    };
    {
      check_name = "schema-hash-present";
      run =
        (fun artifacts ->
          let missing =
            List.filter
              (fun c -> c.Compiler.type_name <> None && c.Compiler.schema_hash = None)
              artifacts
          in
          if missing = [] then true, "typed artifacts carry schema hashes"
          else
            ( false,
              "typed artifacts without schema hash: "
              ^ String.concat ", " (List.map (fun c -> c.Compiler.artifact_path) missing) ));
    };
  ]

let create ?(with_defaults = true) () =
  {
    checks = (if with_defaults then default_checks () else []);
    validated = Hashtbl.create 64;
    nskipped = 0;
  }

let add_check t check = t.checks <- t.checks @ [ check ]

let passed report = List.for_all (fun (_, ok, _) -> ok) report

let run t artifacts =
  (* CI re-validates only artifacts whose bytes it has not already
     passed: a cache-hit compile produces the exact artifact a previous
     run vetted, so re-checking it is pure cost. *)
  let fresh =
    List.filter (fun c -> not (Hashtbl.mem t.validated (artifact_key c))) artifacts
  in
  t.nskipped <- t.nskipped + (List.length artifacts - List.length fresh);
  let report =
    List.map
      (fun check ->
        let ok, detail = check.run fresh in
        check.check_name, ok, detail)
      t.checks
  in
  if passed report then
    List.iter (fun c -> Hashtbl.replace t.validated (artifact_key c) ()) fresh;
  report

let revalidations_skipped t = t.nskipped

let post_to_review review diff_id report =
  List.iter
    (fun (name, passed, detail) ->
      Review.post_test_result review diff_id ~name ~passed ~detail)
    report
