type check = {
  check_name : string;
  run : Compiler.compiled list -> Defense.finding;
}

type report = Defense.verdict list

type t = {
  mutable checks : check list;
  validated : (string, unit) Hashtbl.t; (* artifact content keys that passed *)
  mutable nskipped : int;
}

(* The digest covers the distributed bytes; type/schema hash join the
   key because checks also inspect the typing metadata. *)
let artifact_key c =
  String.concat ":"
    [
      c.Compiler.digest;
      Option.value ~default:"" c.Compiler.type_name;
      Option.value ~default:"" c.Compiler.schema_hash;
    ]

let inline_size_limit = 1024 * 1024

(* A check that flags a subset of the artifacts: the finding carries
   the first offender as its path so the verdict points at a file. *)
let flagging ~none ~some bad =
  match bad with
  | [] -> Defense.finding ~ok:true none
  | offender :: _ ->
      Defense.finding ~ok:false
        ~at:offender.Compiler.artifact_path
        (some ^ String.concat ", " (List.map (fun c -> c.Compiler.artifact_path) bad))

let default_checks () =
  [
    {
      check_name = "json-roundtrip";
      run =
        (fun artifacts ->
          List.filter
            (fun c ->
              match Cm_json.Parser.parse c.Compiler.json_text with
              | Ok parsed -> not (Cm_json.Value.equal parsed c.Compiler.json)
              | Error _ ->
                  (* Raw non-JSON configs are stored as strings and
                     are exempt from the round-trip requirement. *)
                  c.Compiler.type_name <> None)
            artifacts
          |> flagging ~none:"all artifacts round-trip"
               ~some:"non-round-tripping artifacts: ");
    };
    {
      check_name = "size-limit";
      run =
        (fun artifacts ->
          List.filter
            (fun c -> String.length c.Compiler.json_text > inline_size_limit)
            artifacts
          |> flagging ~none:"all artifacts within inline size limit"
               ~some:"artifacts above 1MB (use PackageVessel): ");
    };
    {
      check_name = "no-empty-export";
      run =
        (fun artifacts ->
          List.filter
            (fun c ->
              match c.Compiler.json with
              | Cm_json.Value.Assoc [] -> true
              | _ -> false)
            artifacts
          |> flagging ~none:"no empty exports" ~some:"empty exports: ");
    };
    {
      check_name = "schema-hash-present";
      run =
        (fun artifacts ->
          List.filter
            (fun c -> c.Compiler.type_name <> None && c.Compiler.schema_hash = None)
            artifacts
          |> flagging ~none:"typed artifacts carry schema hashes"
               ~some:"typed artifacts without schema hash: ");
    };
  ]

let create ?(with_defaults = true) () =
  {
    checks = (if with_defaults then default_checks () else []);
    validated = Hashtbl.create 64;
    nskipped = 0;
  }

let add_check t check = t.checks <- t.checks @ [ check ]

let passed = Defense.all_passed

let run ?pool t artifacts =
  (* CI re-validates only artifacts whose bytes it has not already
     passed: a cache-hit compile produces the exact artifact a previous
     run vetted, so re-checking it is pure cost. *)
  let fresh =
    List.filter (fun c -> not (Hashtbl.mem t.validated (artifact_key c))) artifacts
  in
  t.nskipped <- t.nskipped + (List.length artifacts - List.length fresh);
  (* Checks are independent of each other and read-only over [fresh],
     so they fan out across the pool; [map_ordered] keeps the report in
     check-registration order, identical to the sequential run.  The
     [validated] table is only written below, after the join. *)
  let report =
    Parallel.map_ordered pool
      (fun check ->
        Defense.of_finding ~stage:"sandcastle" ~rule:check.check_name (check.run fresh))
      t.checks
  in
  if passed report then
    List.iter (fun c -> Hashtbl.replace t.validated (artifact_key c) ()) fresh;
  report

let revalidations_skipped t = t.nskipped

let post_to_review review diff_id report =
  List.iter (fun verdict -> Review.post_verdict review diff_id verdict) report
