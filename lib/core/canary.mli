(** Automated canary testing (§3.3): a new config is deployed to a
    small slice of production, the slice's health metrics are compared
    against the rest of the fleet, and the rollout proceeds or rolls
    back automatically.

    A canary spec defines multiple phases (the paper's example:
    phase 1 on 20 servers, phase 2 on a full cluster of thousands —
    the cluster phase exists precisely because small-scale canaries
    miss load-related issues, per the §6.4 incident).  Each phase
    declares healthcheck predicates such as "the click-through rate
    of servers on the new config must not be more than x% lower than
    the control population's". *)

type predicate =
  | Metric_below of string * float
      (** absolute ceiling on the test population's mean *)
  | Relative_increase_at_most of string * float
      (** (test - control) / control <= fraction; e.g. error rate *)
  | Relative_drop_at_most of string * float
      (** (control - test) / control <= fraction; e.g. CTR *)
  | No_crashes
      (** the "crashes" metric must stay at zero on test machines;
          checked at every sample tick for fast abort *)

val predicate_name : predicate -> string

type target =
  | Servers of int  (** that many up servers, fleet-wide *)
  | Cluster         (** every server of one cluster *)

type phase = {
  phase_name : string;
  target : target;
  duration : float;       (** seconds of observation *)
  sample_every : float;
  checks : predicate list;
}

type spec = { phases : phase list }

val default_spec : spec
(** Phase "p1-20-servers": 20 servers, 60 s; phase "p2-cluster": one
    full cluster, 540 s — ten minutes of canary in total, matching
    §6.3 ("it takes about ten minutes to go through automated canary
    tests"). *)

type sampler =
  node:Cm_sim.Topology.node_id -> test:bool -> cohort:int -> (string * float) list
(** Application health model: instantaneous metrics of a server
    running the new ([test = true]) or old config.  [cohort] is the
    number of servers currently on the new config, which lets models
    express load-dependent (Type II) failures. *)

type failure = { failed_phase : string; failed_check : string; detail : string }

type outcome = Passed | Failed of failure

val verdict_of_failure : failure -> Defense.verdict
(** The unified defense-stage view: stage ["canary"], rule = the
    failed predicate, detail prefixed with the failing phase. *)

val run :
  ?spec:spec ->
  ?tracer:Cm_trace.Tracer.t ->
  ?ctx:Cm_trace.Tracer.ctx ->
  Cm_sim.Engine.t ->
  Cm_sim.Topology.t ->
  sampler:sampler ->
  on_done:(outcome -> unit) ->
  unit ->
  unit
(** Starts the canary at the current simulated time; [on_done] fires
    when every phase passed or the first predicate fails (automatic
    rollback).  With [tracer]/[ctx] set, each phase records a
    [canary.<phase>] span under the change's trace. *)

val run_sync :
  ?spec:spec -> Cm_sim.Engine.t -> Cm_sim.Topology.t -> sampler:sampler -> outcome
(** Convenience: runs the engine until the canary completes. *)

(** {1 Specs as configs}

    "A config is associated with a canary spec that describes how to
    automate testing the config" — specs themselves are stored and
    distributed as JSON configs ("<config path>.canary" files in the
    source tree; see {!Pipeline}). *)

val spec_to_json : spec -> Cm_json.Value.t
val spec_of_json : Cm_json.Value.t -> (spec, string) result
val spec_of_string : string -> (spec, string) result
