type check_result = Pass | Fail of string

type rule = {
  rule_name : string;
  check : Cm_thrift.Value.t -> check_result;
  range : (string * int * int) option;
}

let rule ?range rule_name check = { rule_name; check; range }

let field_int_range ~field ~min ~max =
  rule ~range:(field, min, max)
    (Printf.sprintf "%s in [%d, %d]" field min max)
    (fun v ->
      match Cm_thrift.Value.field field v with
      | Some (Cm_thrift.Value.Int n) ->
          if n >= min && n <= max then Pass
          else Fail (Printf.sprintf "field %s = %d outside [%d, %d]" field n min max)
      | Some other ->
          Fail
            (Printf.sprintf "field %s is not an integer: %s" field
               (Cm_thrift.Value.to_string other))
      | None -> Pass)

let field_nonempty_string ~field =
  rule
    (Printf.sprintf "%s non-empty" field)
    (fun v ->
      match Cm_thrift.Value.field field v with
      | Some (Cm_thrift.Value.Str "") -> Fail (Printf.sprintf "field %s is empty" field)
      | Some _ | None -> Pass)

let field_string_in ~field ~allowed =
  rule
    (Printf.sprintf "%s in {%s}" field (String.concat ", " allowed))
    (fun v ->
      match Cm_thrift.Value.field field v with
      | Some (Cm_thrift.Value.Str s) ->
          if List.mem s allowed then Pass
          else Fail (Printf.sprintf "field %s = %S not in allowed set" field s)
      | Some _ | None -> Pass)

let field_list_max_length ~field ~max =
  rule
    (Printf.sprintf "%s length <= %d" field max)
    (fun v ->
      match Cm_thrift.Value.field field v with
      | Some (Cm_thrift.Value.List items) ->
          if List.length items <= max then Pass
          else
            Fail
              (Printf.sprintf "field %s has %d elements, max %d" field (List.length items) max)
      | Some _ | None -> Pass)

let forbid_field_value ~field bad ~reason =
  rule
    (Printf.sprintf "%s forbidden value" field)
    (fun v ->
      match Cm_thrift.Value.field field v with
      | Some found when Cm_thrift.Value.equal found bad -> Fail reason
      | Some _ | None -> Pass)

let all rules =
  rule
    (String.concat " && " (List.map (fun r -> r.rule_name) rules))
    (fun v ->
      let rec run = function
        | [] -> Pass
        | r :: rest -> ( match r.check v with Pass -> run rest | Fail _ as f -> f)
      in
      run rules)

type t = { by_type : (string, rule list ref) Hashtbl.t }

let create () = { by_type = Hashtbl.create 16 }

let register t ~type_name r =
  match Hashtbl.find_opt t.by_type type_name with
  | Some rules -> rules := !rules @ [ r ]
  | None -> Hashtbl.replace t.by_type type_name (ref [ r ])

let of_source ~type_name ~source =
  match Cm_lang.Parser.parse source with
  | Error e ->
      Error (Printf.sprintf "validator parse error at line %d: %s" e.Cm_lang.Parser.line
               e.Cm_lang.Parser.message)
  | Ok file ->
      let has_validate =
        List.exists
          (fun (stmt, _) ->
            match stmt with
            | Cm_lang.Ast.Def ("validate", _, _) -> true
            | Cm_lang.Ast.Def _ | Cm_lang.Ast.Bind _ | Cm_lang.Ast.Import _
            | Cm_lang.Ast.Import_thrift _ | Cm_lang.Ast.Export _ -> false)
          file.Cm_lang.Ast.stmts
      in
      if not has_validate then Error "validator source must define validate(cfg)"
      else
        let check v =
          (* Re-run the validator file, then apply its [validate]. *)
          match
            Cm_lang.Eval.run
              ~loader:(fun _ -> None)
              ~path:(type_name ^ ".thrift-cvalidator") ~source
          with
          | Error e -> Fail (Printf.sprintf "validator error: %s" e.Cm_lang.Eval.message)
          | Ok outcome -> (
              match List.assoc_opt "validate" outcome.Cm_lang.Eval.bindings with
              | None -> Fail "validator did not produce a validate function"
              | Some fn -> (
                  let arg = Cm_lang.Eval.of_thrift v in
                  let call =
                    Cm_lang.Parser.parse_expr_exn "validate(cfg)"
                  in
                  match
                    Cm_lang.Eval.eval_expr_standalone
                      ~bindings:[ "validate", fn; "cfg", arg ] call
                  with
                  | Ok (Cm_lang.Eval.V_bool true) -> Pass
                  | Ok (Cm_lang.Eval.V_bool false) -> Fail "validate(cfg) returned false"
                  | Ok (Cm_lang.Eval.V_str "") -> Pass
                  | Ok (Cm_lang.Eval.V_str message) -> Fail message
                  | Ok _ -> Fail "validate(cfg) must return bool or string"
                  | Error e ->
                      Fail (Printf.sprintf "validator error: %s" e.Cm_lang.Eval.message)))
        in
        Ok (rule (type_name ^ " source validator") check)

let register_source t ~type_name ~source =
  match of_source ~type_name ~source with
  | Ok r ->
      register t ~type_name r;
      Ok ()
  | Error _ as e -> e

let validate t ~type_name v =
  match Hashtbl.find_opt t.by_type type_name with
  | None -> Pass
  | Some rules -> (all !rules).check v

let verdicts t ~type_name ~path v =
  match Hashtbl.find_opt t.by_type type_name with
  | None -> []
  | Some rules ->
      List.map
        (fun r ->
          match r.check v with
          | Pass -> Defense.pass ~stage:"validator" ~rule:r.rule_name ~path "holds"
          | Fail reason -> Defense.fail ~stage:"validator" ~rule:r.rule_name ~path reason)
        !rules

let declared_ranges t ~type_name =
  match Hashtbl.find_opt t.by_type type_name with
  | None -> []
  | Some rules ->
      List.filter_map
        (fun r ->
          match r.range with
          | Some (field, lo, hi) -> Some (field, (lo, hi))
          | None -> None)
        !rules

let registered_types t =
  List.sort String.compare (Hashtbl.fold (fun name _ acc -> name :: acc) t.by_type [])
