(* Core-side façade over the domain pool, so the landing-path modules
   (pipeline, sandcastle, verify drivers) share one spelling for
   "optionally fan this out".  [None] means strictly sequential — the
   exact pre-parallel code path, not a 1-domain pool. *)

module Pool = Cm_parallel.Pool

let map_ordered (pool : Pool.t option) (f : 'a -> 'b) (items : 'a list) :
    'b list =
  match pool with
  | None -> List.map f items
  | Some pool -> Pool.map_list pool f items
