(** Code review for config changes (Phabricator's role in Figure 3).

    A config change is treated the same as a code change: it is
    submitted as a diff, integration-test results are posted to it,
    and it needs the approval of a reviewer other than its author
    before it may proceed to canary and landing. *)

type diff_id = int

type state =
  | Pending
  | Accepted of string   (** reviewer *)
  | Rejected of string * string  (** reviewer, reason *)

type diff = {
  id : diff_id;
  author : string;
  title : string;
  base : Cm_vcs.Store.oid option;
  changes : Cm_vcs.Repo.change list;
  mutable state : state;
  mutable test_results : Defense.verdict list;
      (** the unified defense-stage record — verdicts posted by
          Sandcastle, the verify stage, and ad-hoc tooling, each
          carrying its stage, rule, offending path, and (on failure)
          any suggested repair *)
}

type t

val create : unit -> t

val submit :
  t ->
  author:string ->
  title:string ->
  base:Cm_vcs.Store.oid option ->
  Cm_vcs.Repo.change list ->
  diff_id

val get : t -> diff_id -> diff option

val post_verdict : t -> diff_id -> Defense.verdict -> unit
(** Append a defense-stage verdict to the diff's test record. *)

val post_test_result : t -> diff_id -> name:string -> passed:bool -> detail:string -> unit
(** Convenience shim over {!post_verdict}: wraps an ad-hoc result into
    a stage-["review"] verdict. *)

val approve : t -> diff_id -> reviewer:string -> (unit, string) result
(** Fails when the reviewer is the author (self-review is forbidden)
    or the diff is not pending. *)

val reject : t -> diff_id -> reviewer:string -> reason:string -> (unit, string) result

val pending : t -> diff list
val count : t -> int
