module TValue = Cm_thrift.Value

type edit = {
  field_path : string list;
  new_value : TValue.t;
}

let set field_path new_value = { field_path; new_value }

let rec set_path value path new_value =
  match path with
  | [] -> Ok new_value
  | key :: rest -> (
      match value with
      | TValue.Struct (name, fields) ->
          if not (List.mem_assoc key fields) then
            Error (Printf.sprintf "struct %s has no field %s" name key)
          else begin
            let rec update acc = function
              | [] -> Error "unreachable"
              | (fname, old) :: others when fname = key -> (
                  match set_path old rest new_value with
                  | Ok updated -> Ok (List.rev_append acc ((fname, updated) :: others))
                  | Error _ as e -> e)
              | entry :: others -> update (entry :: acc) others
            in
            match update [] fields with
            | Ok fields -> Ok (TValue.Struct (name, fields))
            | Error _ as e -> e
          end
      | TValue.Map pairs ->
          let target = TValue.Str key in
          let found = List.exists (fun (k, _) -> TValue.equal k target) pairs in
          if not found then Error (Printf.sprintf "map has no key %s" key)
          else begin
            let rec update acc = function
              | [] -> Error "unreachable"
              | (k, old) :: others when TValue.equal k target -> (
                  match set_path old rest new_value with
                  | Ok updated -> Ok (List.rev_append acc ((k, updated) :: others))
                  | Error _ as e -> e)
              | entry :: others -> update (entry :: acc) others
            in
            match update [] pairs with
            | Ok pairs -> Ok (TValue.Map pairs)
            | Error _ as e -> e
          end
      | other ->
          Error
            (Printf.sprintf "cannot descend into %s at %s" (TValue.to_string other) key))

let apply_edits ~schema ~type_name value edits =
  let rec apply value = function
    | [] -> Ok value
    | edit :: rest -> (
        match set_path value edit.field_path edit.new_value with
        | Ok updated -> apply updated rest
        | Error _ as e -> e)
  in
  match apply value edits with
  | Error _ as e -> e
  | Ok updated -> (
      (* The UI cannot produce an object the schema rejects. *)
      match Cm_thrift.Check.check_struct schema type_name updated with
      | Ok normalized -> Ok normalized
      | Error e -> Error (Format.asprintf "%a" Cm_thrift.Check.pp_error e))

let rec value_at value path =
  match path with
  | [] -> Some value
  | key :: rest -> (
      match value with
      | TValue.Struct (_, fields) -> (
          match List.assoc_opt key fields with
          | Some v -> value_at v rest
          | None -> None)
      | TValue.Map pairs -> (
          match List.find_opt (fun (k, _) -> TValue.equal k (TValue.Str key)) pairs with
          | Some (_, v) -> value_at v rest
          | None -> None)
      | _ -> None)

let describe_edits ~old_value edits =
  String.concat "; "
    (List.map
       (fun edit ->
         let field = String.concat "." edit.field_path in
         match value_at old_value edit.field_path with
         | Some old ->
             Printf.sprintf "Updated %s from %s to %s" field (TValue.to_string old)
               (TValue.to_string edit.new_value)
         | None -> Printf.sprintf "Set %s to %s" field (TValue.to_string edit.new_value))
       edits)

(* --- CSL generation --------------------------------------------------- *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

exception Unrepresentable of string

let rec literal buf indent value =
  let pad = String.make indent ' ' in
  match value with
  | TValue.Bool b -> Buffer.add_string buf (string_of_bool b)
  | TValue.Int n -> Buffer.add_string buf (string_of_int n)
  | TValue.Double f ->
      let text = Printf.sprintf "%.12g" f in
      Buffer.add_string buf
        (if String.contains text '.' || String.contains text 'e' then text else text ^ ".0")
  | TValue.Str s ->
      Buffer.add_char buf '"';
      Buffer.add_string buf (escape s);
      Buffer.add_char buf '"'
  | TValue.List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ", ";
          literal buf indent item)
        items;
      Buffer.add_char buf ']'
  | TValue.Map pairs ->
      Buffer.add_string buf "{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf "\n  ";
          Buffer.add_string buf pad;
          (match k with
          | TValue.Str s ->
              Buffer.add_char buf '"';
              Buffer.add_string buf (escape s);
              Buffer.add_char buf '"'
          | other -> raise (Unrepresentable ("non-string map key " ^ TValue.to_string other)));
          Buffer.add_string buf ": ";
          literal buf (indent + 2) v)
        pairs;
      if pairs <> [] then begin
        Buffer.add_char buf '\n';
        Buffer.add_string buf pad
      end;
      Buffer.add_char buf '}'
  | TValue.Struct (name, fields) ->
      Buffer.add_string buf name;
      Buffer.add_string buf " {";
      List.iteri
        (fun i (fname, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf "\n  ";
          Buffer.add_string buf pad;
          Buffer.add_string buf fname;
          Buffer.add_string buf " = ";
          literal buf (indent + 2) v)
        fields;
      if fields <> [] then begin
        Buffer.add_char buf '\n';
        Buffer.add_string buf pad
      end;
      Buffer.add_char buf '}'
  | TValue.Enum (ty, member) ->
      Buffer.add_string buf ty;
      Buffer.add_char buf '.';
      Buffer.add_string buf member

let source_of_value ~thrift_imports value =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "# Generated by the Configerator UI; do not hand-edit lightly.\n";
  List.iter
    (fun path -> Buffer.add_string buf (Printf.sprintf "import_thrift \"%s\"\n" path))
    thrift_imports;
  Buffer.add_string buf "export ";
  match literal buf 0 value with
  | () ->
      Buffer.add_char buf '\n';
      Ok (Buffer.contents buf)
  | exception Unrepresentable what -> Error ("cannot express in CSL: " ^ what)

(* --- the round trip ---------------------------------------------------- *)

let propose pipeline ~author ~config_path edits ~on_done =
  let reject errors =
    on_done
      (Pipeline.Rejected
         (Defense.reject ~stage:"compile" (List.map Compiler.verdict_of_error errors)))
  in
  let fail message =
    reject [ { Compiler.at = config_path; stage = Compiler.Eval; message } ]
  in
  match Compiler.compile (Pipeline.compiler pipeline) config_path with
  | Error e -> reject [ e ]
  | Ok compiled -> (
      match compiled.Compiler.type_name with
      | None -> fail "UI edits require a typed config"
      | Some type_name -> (
          match
            Cm_thrift.Codec.decode_struct compiled.Compiler.schema type_name
              compiled.Compiler.json
          with
          | Error e -> fail (Format.asprintf "%a" Cm_thrift.Codec.pp_error e)
          | Ok current -> (
              match
                apply_edits ~schema:compiled.Compiler.schema ~type_name current edits
              with
              | Error message -> fail message
              | Ok updated -> (
                  let thrift_imports =
                    List.filter
                      (fun dep ->
                        Source_tree.kind_of_path dep = Source_tree.Thrift)
                      compiled.Compiler.deps
                  in
                  match source_of_value ~thrift_imports updated with
                  | Error message -> fail message
                  | Ok source ->
                      let title = describe_edits ~old_value:current edits in
                      Pipeline.propose pipeline ~author ~title
                        [ config_path, source ]
                        ~on_done))))
