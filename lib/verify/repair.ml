module Defense = Core.Defense
module Value = Cm_json.Value

let set_field json field replacement =
  match json with
  | Value.Assoc fields when List.mem_assoc field fields ->
      Some
        (Value.Assoc
           (List.map
              (fun (name, v) -> if String.equal name field then name, replacement else name, v)
              fields))
  | _ -> None

(* Clamp candidates for every integer field sitting outside a declared
   range, nearest bound first: the minimal edit that restores the
   declared contract. *)
let range_candidates ~validators ~compiled =
  match compiled.Core.Compiler.type_name with
  | None -> []
  | Some type_name ->
      let ranges = Core.Validator.declared_ranges validators ~type_name in
      List.filter_map
        (fun (field, (lo, hi)) ->
          match compiled.Core.Compiler.json with
          | Value.Assoc fields -> (
              match List.assoc_opt field fields with
              | Some (Value.Int n) when n < lo || n > hi ->
                  let bound = if n < lo then lo else hi in
                  Option.map
                    (fun json ->
                      ( abs (n - bound),
                        json,
                        Printf.sprintf "%s = %d clamped to %d (nearest bound of [%d, %d])"
                          field n bound lo hi ))
                    (set_field compiled.Core.Compiler.json field (Value.Int bound))
              | _ -> None)
          | _ -> None)
        ranges
      |> List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b)
      |> List.map (fun (_, json, note) -> json, note)

(* Committed history of the artifact, most recent first, skipping
   revisions byte-identical to the proposal. *)
let landed_candidates ~repo ~compiled =
  let path = compiled.Core.Compiler.artifact_path in
  List.filter_map
    (fun (oid, _) ->
      match Cm_vcs.Repo.read_file ~rev:oid repo path with
      | Some text when not (String.equal text compiled.Core.Compiler.json_text) -> (
          match Cm_json.Parser.parse text with
          | Ok json ->
              Some
                ( json,
                  Printf.sprintf "last-landed value of %s (revision %s)" path
                    (String.sub oid 0 (Int.min 8 (String.length oid))) )
          | Error _ -> None)
      | _ -> None)
    (Cm_vcs.Repo.path_history repo path)

let suggest ?validators ?repo ~compiled ~accepts () =
  let pick origin candidates =
    List.find_map
      (fun (json, note) ->
        if accepts json then
          Some (Defense.repair ~origin ~suggestion:(Value.to_compact_string json) note)
        else None)
      candidates
  in
  let from_ranges =
    match validators with
    | None -> None
    | Some validators ->
        pick "validator-range" (range_candidates ~validators ~compiled)
  in
  match from_ranges with
  | Some _ as repair -> repair
  | None -> (
      match repo with
      | None -> None
      | Some repo -> pick "last-landed" (landed_candidates ~repo ~compiled))
