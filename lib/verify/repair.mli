(** Tortoise-style minimal repair suggestions for failing verify
    verdicts (after "Tortoise: Interactive System Configuration
    Repair" — suggest the {e nearest} passing value, don't guess).

    Two candidate sources, tried in order:
    + {b validator-range}: if the artifact has an integer field outside
      an invariant declared via {!Core.Validator.field_int_range},
      clamp it to the nearest bound — the smallest change that
      satisfies the declared contract;
    + {b last-landed}: the most recent committed artifact content that
      differs from the proposal ({!Cm_vcs.Repo.path_history}) — roll
      the value back to what production last ran.

    Every candidate is re-run through the failing check ([accepts])
    before it is suggested; a repair that does not actually pass is
    never surfaced. *)

val suggest :
  ?validators:Core.Validator.t ->
  ?repo:Cm_vcs.Repo.t ->
  compiled:Core.Compiler.compiled ->
  accepts:(Cm_json.Value.t -> bool) ->
  unit ->
  Core.Defense.repair option
(** [accepts] is the failing invariant/config test, re-applied to a
    candidate replacement for [compiled]'s artifact value. *)
