module Defense = Core.Defense
module Value = Cm_json.Value

type test = Core.Compiler.compiled -> Defense.finding

let ok c note = Defense.finding ~ok:true ~at:c.Core.Compiler.artifact_path note
let bad c note = Defense.finding ~ok:false ~at:c.Core.Compiler.artifact_path note

let gatekeeper_project ?(ctx = { Cm_gatekeeper.Restraint.laser = None }) ~users () c =
  match Cm_gatekeeper.Project.of_json c.Core.Compiler.json with
  | Error reason -> bad c (Printf.sprintf "does not parse as a Gatekeeper project: %s" reason)
  | Ok project -> (
      let bad_prob =
        List.exists
          (fun rule ->
            rule.Cm_gatekeeper.Project.pass_prob < 0.0
            || rule.Cm_gatekeeper.Project.pass_prob > 1.0)
          project.Cm_gatekeeper.Project.rules
      in
      if bad_prob then bad c "a rule's pass probability is outside [0, 1]"
      else
        match
          List.iter
            (fun user -> ignore (Cm_gatekeeper.Project.check ctx project user))
            users
        with
        | () ->
            ok c
              (Printf.sprintf "gk_check evaluated for %d sample users" (List.length users))
        | exception exn ->
            bad c (Printf.sprintf "restraint evaluation raised: %s" (Printexc.to_string exn)))

let sitevar_reader ?accept () c =
  match c.Core.Compiler.json with
  | Value.Null -> bad c "sitevar reads as null"
  | json -> (
      match accept with
      | None -> ok c "sitevar readable"
      | Some accept -> (
          match accept json with
          | Ok () -> ok c "sitevar satisfies its reader"
          | Error reason -> bad c (Printf.sprintf "reader rejects the value: %s" reason)))

let mobileconfig_translation () c =
  match Cm_mobileconfig.Translation.of_json c.Core.Compiler.json with
  | Ok _ -> ok c "translation-layer mapping parses"
  | Error reason ->
      bad c (Printf.sprintf "does not parse as a translation mapping: %s" reason)
