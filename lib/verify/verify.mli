(** The verify-stage registry: the correctness plane that runs between
    compile and sandcastle ({!Core.Pipeline}'s [verify] hook).

    Three kinds of checks live here, all reporting through the unified
    {!Core.Defense} API:
    - {b static checks} ({!Static}) — cross-artifact analysis of the
      compiled cone (dependency cycles, shadowed exports, artifact
      collisions);
    - {b invariants} — cross-config predicates registered per
      path-prefix, run over every compiled artifact under the prefix
      at once (e.g. "the ports in jobs/ are pairwise distinct");
    - {b config tests} ({!Consumers}) — consumer functions registered
      per path-prefix, run against each proposed artifact value
      individually.

    On failure the registry asks {!Repair} for a Tortoise-style
    minimal repair — nearest value passing the failing check from a
    declared validator range, else the last-landed value — and
    attaches it to the verdict, which the pipeline surfaces through
    review and the [configerator verify] CLI verb.

    A freshly created registry with nothing registered produces no
    verdicts: attaching it to a pipeline is behavior-preserving. *)

type invariant = Core.Compiler.compiled list -> Core.Defense.finding
(** Sees every compiled artifact under its prefix at once. *)

type t

val create : ?static_checks:Static.check list -> unit -> t
(** [static_checks] defaults to none; pass {!Static.all} for the
    standard cross-artifact set. *)

val standard : unit -> t
(** [create ~static_checks:Static.all ()]. *)

val register_invariant : t -> name:string -> prefix:string -> invariant -> unit
(** The invariant runs whenever the compiled cone contains at least
    one config or artifact path starting with [prefix] ([""] matches
    everything). *)

val register_test : t -> name:string -> prefix:string -> Consumers.test -> unit
(** The test runs once per compiled artifact under [prefix]. *)

val is_empty : t -> bool
(** No static checks, invariants, or tests registered. *)

val run : t -> Core.Pipeline.verify_input -> Core.Defense.verdict list
(** The verify stage itself.  An empty registry returns no verdicts;
    otherwise one verdict per static check (pass or fail), per
    applicable invariant, and per (test, artifact) pair.  Failing
    verdicts carry a repair suggestion when {!Repair.suggest} finds a
    candidate that passes the failing check. *)

val attach : t -> Core.Pipeline.t -> unit
(** Wires [run] in as the pipeline's verify stage
    ({!Core.Pipeline.set_verify}). *)

(** {1 Counters} *)

val checks_run : t -> int
(** Verdicts produced over the registry's lifetime. *)

val failures : t -> int
val repairs_suggested : t -> int
