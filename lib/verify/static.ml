module ST = Core.Source_tree
module Defense = Core.Defense
module Ast = Cm_lang.Ast

type check = {
  check_name : string;
  run :
    tree:ST.t ->
    compiled:Core.Compiler.compiled list ->
    Defense.finding list;
}

(* The cone's source closure: every config plus everything it imports. *)
let reachable compiled =
  List.sort_uniq String.compare
    (List.concat_map
       (fun c -> c.Core.Compiler.config_path :: c.Core.Compiler.deps)
       compiled)

let is_csl path =
  match ST.kind_of_path path with
  | ST.Cconf | ST.Cinc | ST.Cvalidator -> true
  | ST.Thrift | ST.Raw -> false

let parsed tree paths =
  List.filter_map
    (fun path ->
      if not (is_csl path) then None
      else
        match ST.read tree path with
        | None -> None
        | Some source -> (
            (* Unparseable sources are the compiler's problem, not ours. *)
            match Cm_lang.Parser.parse source with
            | Error _ -> None
            | Ok file -> Some (path, file)))
    paths

let csl_imports file =
  List.filter_map
    (function `Csl p -> Some p | `Thrift _ -> None)
    (Ast.imports file)

let cycles =
  {
    check_name = "dep-cycle";
    run =
      (fun ~tree ~compiled ->
        let files = parsed tree (reachable compiled) in
        let adj = Hashtbl.create 16 in
        List.iter
          (fun (path, file) -> Hashtbl.replace adj path (csl_imports file))
          files;
        let state = Hashtbl.create 16 in
        let found = ref [] in
        let rec dfs stack path =
          match Hashtbl.find_opt state path with
          | Some `Done -> ()
          | Some `Active ->
              (* Back edge: the cycle is the stack suffix from [path],
                 closed by repeating [path] at the end. *)
              let rec take acc = function
                | [] -> acc
                | p :: rest -> if p = path then p :: acc else take (p :: acc) rest
              in
              found := (take [] stack @ [ path ]) :: !found
          | None ->
              Hashtbl.replace state path `Active;
              List.iter
                (fun dep -> if Hashtbl.mem adj dep then dfs (path :: stack) dep)
                (Option.value ~default:[] (Hashtbl.find_opt adj path));
              Hashtbl.replace state path `Done
        in
        List.iter (fun (path, _) -> dfs [] path) files;
        List.rev_map
          (fun cycle ->
            Defense.finding ~ok:false ~at:(List.hd cycle)
              (Printf.sprintf "import cycle: %s" (String.concat " -> " cycle)))
          !found);
  }

let bound_names file =
  List.filter_map
    (fun (stmt, _) ->
      match stmt with
      | Ast.Bind (name, _) | Ast.Def (name, _, _) -> Some name
      | Ast.Import _ | Ast.Import_thrift _ | Ast.Export _ -> None)
    file.Ast.stmts

let shadowed_exports =
  {
    check_name = "shadowed-export";
    run =
      (fun ~tree ~compiled ->
        let files = parsed tree (reachable compiled) in
        let exports_of =
          let table = Hashtbl.create 16 in
          List.iter (fun (path, file) -> Hashtbl.replace table path (bound_names file)) files;
          fun path -> Option.value ~default:[] (Hashtbl.find_opt table path)
        in
        List.concat_map
          (fun (path, file) ->
            (* Walk the statements in evaluation order, tracking where
               each name last came from. *)
            let env = Hashtbl.create 16 in
            let findings = ref [] in
            let flag note = findings := Defense.finding ~ok:false ~at:path note :: !findings in
            List.iter
              (fun (stmt, _) ->
                match stmt with
                | Ast.Import dep ->
                    List.iter
                      (fun name ->
                        (match Hashtbl.find_opt env name with
                        | Some (`Import other) when other <> dep ->
                            flag
                              (Printf.sprintf
                                 "%s: import of %S shadows %S already imported from %S"
                                 path name name other)
                        | Some (`Import _) | Some `Local | None -> ());
                        Hashtbl.replace env name (`Import dep))
                      (exports_of dep)
                | Ast.Bind (name, _) | Ast.Def (name, _, _) ->
                    (match Hashtbl.find_opt env name with
                    | Some (`Import dep) ->
                        flag
                          (Printf.sprintf "%s: local binding %S shadows the export of %S"
                             path name dep)
                    | Some `Local | None -> ());
                    Hashtbl.replace env name `Local
                | Ast.Import_thrift _ | Ast.Export _ -> ())
              file.Ast.stmts;
            List.rev !findings)
          files);
  }

let artifact_collisions =
  {
    check_name = "artifact-collision";
    run =
      (fun ~tree:_ ~compiled ->
        let by_artifact = Hashtbl.create 16 in
        List.iter
          (fun c ->
            let key = c.Core.Compiler.artifact_path in
            let sources = Option.value ~default:[] (Hashtbl.find_opt by_artifact key) in
            Hashtbl.replace by_artifact key (c.Core.Compiler.config_path :: sources))
          compiled;
        Hashtbl.fold
          (fun artifact sources acc ->
            match List.sort_uniq String.compare sources with
            | _ :: _ :: _ as many ->
                Defense.finding ~ok:false ~at:artifact
                  (Printf.sprintf "artifact %s produced by multiple configs: %s" artifact
                     (String.concat ", " many))
                :: acc
            | _ -> acc)
          by_artifact []
        |> List.sort (fun a b -> String.compare a.Defense.at b.Defense.at));
  }

let all = [ cycles; shadowed_exports; artifact_collisions ]
