(** Static cross-artifact checks over a proposed change's compiled
    cone — the first half of the verify stage.

    Each check inspects the cone's sources and artifacts {e together}
    and returns failure findings; the registry ({!Verify}) lifts them
    into stage-["verify"] verdicts.  Unlike validators, which see one
    config value at a time, these checks see relations {e between}
    files — the error class that slips past per-config validation.

    Checks are scoped to the change's cone (the compiled configs plus
    their transitive import closures), so a pre-existing oddity in an
    untouched corner of the tree cannot bounce an unrelated change. *)

type check = {
  check_name : string;
  run :
    tree:Core.Source_tree.t ->
    compiled:Core.Compiler.compiled list ->
    Core.Defense.finding list;
      (** failure findings only; an empty list means the check passed *)
}

val cycles : check
(** Import cycles among the cone's CSL sources.  The evaluator aborts
    on a cycle it actually walks; this catches {e latent} cycles —
    through imports a config does not currently reach at runtime —
    before they bite whoever adds the triggering reference. *)

val shadowed_exports : check
(** A [Bind]/[Def] that silently rebinds a name an earlier [import]
    brought in, or two imports exporting the same name: the classic
    "my constant was quietly overridden" error. *)

val artifact_collisions : check
(** Two configs in the cone compiling to the same artifact path —
    whichever lands last silently wins. *)

val all : check list
(** The standard set, in the order above. *)
