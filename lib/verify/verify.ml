module Defense = Core.Defense
module Compiler = Core.Compiler
module Pipeline = Core.Pipeline

type invariant = Compiler.compiled list -> Defense.finding

type t = {
  static_checks : Static.check list;
  mutable invariants : (string * string * invariant) list;
  mutable tests : (string * string * Consumers.test) list;
  mutable nrun : int;
  mutable nfailed : int;
  mutable nrepairs : int;
}

let create ?(static_checks = []) () =
  { static_checks; invariants = []; tests = []; nrun = 0; nfailed = 0; nrepairs = 0 }

let standard () = create ~static_checks:Static.all ()

let register_invariant t ~name ~prefix invariant =
  t.invariants <- t.invariants @ [ name, prefix, invariant ]

let register_test t ~name ~prefix test = t.tests <- t.tests @ [ name, prefix, test ]

let is_empty t = t.static_checks = [] && t.invariants = [] && t.tests = []

let checks_run t = t.nrun
let failures t = t.nfailed
let repairs_suggested t = t.nrepairs

let prefix_matches ~prefix path =
  String.length path >= String.length prefix
  && String.equal (String.sub path 0 (String.length prefix)) prefix

let under_prefix ~prefix compiled =
  List.filter
    (fun c ->
      prefix_matches ~prefix c.Compiler.config_path
      || prefix_matches ~prefix c.Compiler.artifact_path)
    compiled

(* A candidate repair replaces one artifact's value; re-running the
   failing check on the patched artifact decides acceptance. *)
let with_json c json =
  let json_text = Cm_json.Value.to_compact_string json in
  { c with Compiler.json; json_text; digest = Compiler.digest_of_text json_text }

let note t verdict =
  t.nrun <- t.nrun + 1;
  if not verdict.Defense.passed then t.nfailed <- t.nfailed + 1;
  if verdict.Defense.repair <> None then t.nrepairs <- t.nrepairs + 1;
  verdict

let run t (input : Pipeline.verify_input) =
  let compiled = input.Pipeline.verify_compiled in
  let repair_for ~target ~accepts =
    Repair.suggest ~validators:input.Pipeline.verify_validators
      ~repo:input.Pipeline.verify_repo ~compiled:target ~accepts ()
  in
  let statics =
    List.concat_map
      (fun check ->
        match check.Static.run ~tree:input.Pipeline.verify_tree ~compiled with
        | [] ->
            [ note t (Defense.pass ~stage:"verify" ~rule:check.Static.check_name "clean") ]
        | findings ->
            List.map
              (fun f ->
                note t (Defense.of_finding ~stage:"verify" ~rule:check.Static.check_name f))
              findings)
      t.static_checks
  in
  let invariants =
    List.filter_map
      (fun (name, prefix, invariant) ->
        match under_prefix ~prefix compiled with
        | [] -> None
        | subset ->
            let finding = invariant subset in
            let verdict = Defense.of_finding ~stage:"verify" ~rule:name finding in
            let verdict =
              if verdict.Defense.passed then verdict
              else
                (* Repair the artifact the invariant blames, if it is
                   part of the cone. *)
                match
                  List.find_opt
                    (fun c ->
                      String.equal c.Compiler.artifact_path finding.Defense.at
                      || String.equal c.Compiler.config_path finding.Defense.at)
                    subset
                with
                | None -> verdict
                | Some target ->
                    let accepts json =
                      let patched =
                        List.map
                          (fun c ->
                            if String.equal c.Compiler.artifact_path target.Compiler.artifact_path
                            then with_json c json
                            else c)
                          subset
                      in
                      (invariant patched).Defense.ok
                    in
                    { verdict with Defense.repair = repair_for ~target ~accepts }
            in
            Some (note t verdict))
      t.invariants
  in
  let tests =
    List.concat_map
      (fun (name, prefix, test) ->
        List.map
          (fun c ->
            let finding = test c in
            let verdict = Defense.of_finding ~stage:"verify" ~rule:name finding in
            let verdict =
              if verdict.Defense.passed then verdict
              else
                let accepts json = (test (with_json c json)).Defense.ok in
                { verdict with Defense.repair = repair_for ~target:c ~accepts }
            in
            note t verdict)
          (under_prefix ~prefix compiled))
      t.tests
  in
  statics @ invariants @ tests

let attach t pipeline = Pipeline.set_verify pipeline (run t)
