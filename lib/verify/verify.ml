module Defense = Core.Defense
module Compiler = Core.Compiler
module Pipeline = Core.Pipeline

type invariant = Compiler.compiled list -> Defense.finding

type t = {
  static_checks : Static.check list;
  mutable invariants : (string * string * invariant) list;
  mutable tests : (string * string * Consumers.test) list;
  mutable nrun : int;
  mutable nfailed : int;
  mutable nrepairs : int;
}

let create ?(static_checks = []) () =
  { static_checks; invariants = []; tests = []; nrun = 0; nfailed = 0; nrepairs = 0 }

let standard () = create ~static_checks:Static.all ()

let register_invariant t ~name ~prefix invariant =
  t.invariants <- t.invariants @ [ name, prefix, invariant ]

let register_test t ~name ~prefix test = t.tests <- t.tests @ [ name, prefix, test ]

let is_empty t = t.static_checks = [] && t.invariants = [] && t.tests = []

let checks_run t = t.nrun
let failures t = t.nfailed
let repairs_suggested t = t.nrepairs

let prefix_matches ~prefix path =
  String.length path >= String.length prefix
  && String.equal (String.sub path 0 (String.length prefix)) prefix

let under_prefix ~prefix compiled =
  List.filter
    (fun c ->
      prefix_matches ~prefix c.Compiler.config_path
      || prefix_matches ~prefix c.Compiler.artifact_path)
    compiled

(* A candidate repair replaces one artifact's value; re-running the
   failing check on the patched artifact decides acceptance. *)
let with_json c json =
  let json_text = Cm_json.Value.to_compact_string json in
  { c with Compiler.json; json_text; digest = Compiler.digest_of_text json_text }

let note t verdict =
  t.nrun <- t.nrun + 1;
  if not verdict.Defense.passed then t.nfailed <- t.nfailed + 1;
  if verdict.Defense.repair <> None then t.nrepairs <- t.nrepairs + 1;
  verdict

(* The verify stage fans out across the pipeline's domain pool (when
   one is attached): every static check, applicable invariant and
   (test, artifact) pair is an independent read-only job.  Two things
   stay on the caller's domain, at the join point, to keep the stage's
   observable behavior identical to the sequential run:

   - the [note] counters — per the per-domain-counters rule, workers
     never touch shared mutable state;
   - repair synthesis — [Repair.suggest] reads the repo (whose pack
     backend shares a seeking file descriptor), and repairs only exist
     for failing verdicts, so deferring them costs nothing on the
     all-green path.

   Each job therefore returns [(verdict, deferred-repair)] pairs; jobs
   are enumerated in the sequential order (statics, then invariants,
   then tests) and the pool preserves that order, so the final verdict
   list is identical with 1 or N domains. *)
let run t (input : Pipeline.verify_input) =
  let compiled = input.Pipeline.verify_compiled in
  let repair_for ~target ~accepts =
    Repair.suggest ~validators:input.Pipeline.verify_validators
      ~repo:input.Pipeline.verify_repo ~compiled:target ~accepts ()
  in
  let no_repair () = None in
  let static_job check () =
    match check.Static.run ~tree:input.Pipeline.verify_tree ~compiled with
    | [] ->
        [ Defense.pass ~stage:"verify" ~rule:check.Static.check_name "clean", no_repair ]
    | findings ->
        List.map
          (fun f ->
            Defense.of_finding ~stage:"verify" ~rule:check.Static.check_name f, no_repair)
          findings
  in
  let invariant_job (name, prefix, invariant) () =
    match under_prefix ~prefix compiled with
    | [] -> []
    | subset ->
        let finding = invariant subset in
        let verdict = Defense.of_finding ~stage:"verify" ~rule:name finding in
        let repair =
          if verdict.Defense.passed then no_repair
          else
            (* Repair the artifact the invariant blames, if it is
               part of the cone. *)
            match
              List.find_opt
                (fun c ->
                  String.equal c.Compiler.artifact_path finding.Defense.at
                  || String.equal c.Compiler.config_path finding.Defense.at)
                subset
            with
            | None -> no_repair
            | Some target ->
                fun () ->
                  let accepts json =
                    let patched =
                      List.map
                        (fun c ->
                          if String.equal c.Compiler.artifact_path target.Compiler.artifact_path
                          then with_json c json
                          else c)
                        subset
                    in
                    (invariant patched).Defense.ok
                  in
                  repair_for ~target ~accepts
        in
        [ verdict, repair ]
  in
  let test_job name test c () =
    let finding = test c in
    let verdict = Defense.of_finding ~stage:"verify" ~rule:name finding in
    let repair =
      if verdict.Defense.passed then no_repair
      else
        fun () ->
          let accepts json = (test (with_json c json)).Defense.ok in
          repair_for ~target:c ~accepts
    in
    [ verdict, repair ]
  in
  let jobs =
    List.map static_job t.static_checks
    @ List.map invariant_job t.invariants
    @ List.concat_map
        (fun (name, prefix, test) ->
          List.map (test_job name test) (under_prefix ~prefix compiled))
        t.tests
  in
  Core.Parallel.map_ordered input.Pipeline.verify_pool (fun job -> job ()) jobs
  |> List.concat
  |> List.map (fun (verdict, repair) ->
         let verdict =
           if verdict.Defense.passed then verdict
           else { verdict with Defense.repair = repair () }
         in
         note t verdict)

let attach t pipeline = Pipeline.set_verify pipeline (run t)
