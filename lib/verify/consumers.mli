(** Preset config tests: consumer code run against proposed artifact
    values (the verify stage's second half — "configuration testing"
    in the Xu & Legunsen sense).

    A config test does what the consuming system will do at
    distribution time, at proposal time: parse the artifact and
    exercise it the way production would.  A value that parses but
    breaks its consumer fails {e here}, not in the canary. *)

type test = Core.Compiler.compiled -> Core.Defense.finding
(** What {!Verify.register_test} accepts. *)

val gatekeeper_project :
  ?ctx:Cm_gatekeeper.Restraint.ctx ->
  users:Cm_gatekeeper.User.t list ->
  unit ->
  test
(** Parses the artifact as a Gatekeeper project, checks every rule's
    pass probability is within [0, 1], and evaluates the gate for each
    sample user — the paper's restraint evaluation, run before the
    value can reach facebook.com. *)

val sitevar_reader :
  ?accept:(Cm_json.Value.t -> (unit, string) result) -> unit -> test
(** A frontend sitevar read: the artifact must be non-null JSON, and
    must satisfy [accept] (the reader's expectations, e.g. a type or
    bounds check) when one is given. *)

val mobileconfig_translation : unit -> test
(** Parses the artifact as a MobileConfig translation-layer mapping
    ({!Cm_mobileconfig.Translation.of_json}) — every field must name a
    well-formed backend before the mapping can go live. *)
