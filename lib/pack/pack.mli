(** Durable content-addressed object store: append-only pack segments,
    an in-memory oid index rebuilt by scan on open, batched group
    fsync, a root-pinned generation log, and mark-and-sweep GC with
    segment compaction.

    The design follows the Nix/system-manager model grounded in
    PAPERS.md/SNIPPETS.md: objects are immutable and addressed by
    content, so durability is append-only; each landed commit pins a
    {e generation} (a root oid) in a separate log, so whole-tree
    rollback is one O(1) pin append rather than any data movement; and
    everything unreachable from live generation roots is garbage.

    {2 Durability model}

    Appends buffer in memory.  {!sync} writes the buffer and fsyncs —
    one fsync per {e batch}, not per object (the Zeus 50ms-batch
    discipline): a put that arrives [sync_window] seconds or more
    after the first unsynced one triggers the sync automatically, and
    callers that need a commit durable {e now} call {!sync} directly.
    {!durable_generation} reports the newest generation whose pin and
    data batches have been fsynced; everything newer is exactly what a
    [kill -9] would lose ({!crash} models that, including torn tail
    records).

    {2 Crash recovery}

    {!create} on an existing directory scans every segment: verified
    records rebuild the index; a torn tail (crash mid-append) is
    truncated; a checksum-corrupt record in the middle is skipped and
    reported, never fatal; segments left by an interrupted compaction
    are deduplicated or deleted via the manifest; and records a past
    GC swept but left in under-threshold segments are fenced out by
    the liveness snapshot each GC publishes (live oids plus
    per-segment watermarks — anything written after the snapshot is
    past a watermark and therefore live).  {!recovery} reports what
    the scan found. *)

type t

type gen = {
  g_num : int;  (** sequential from 1 *)
  g_root : string;  (** the pinned root oid *)
  g_time : float;
  g_message : string;
}

type recovery = {
  segments_scanned : int;
  records_indexed : int;
  duplicates_skipped : int;  (** re-copies left by an interrupted GC *)
  corrupt_skipped : int;  (** checksum-failed records (skipped, reported) *)
  torn_tail_bytes : int;  (** truncated from segment tails *)
  generations_read : int;
  generations_corrupt_skipped : int;
  generation_tail_bytes : int;  (** truncated from the generation log *)
}

type gc_stats = {
  gc_live_objects : int;
  gc_swept_objects : int;
  gc_swept_data_bytes : int;  (** payload data of swept objects *)
  gc_segments_compacted : int;
  gc_segments_deleted : int;
  gc_file_bytes_before : int;
  gc_file_bytes_after : int;
  gc_generations_dropped : int;
}

val create :
  dir:string ->
  ?sync_window:float ->
  ?segment_max_bytes:int ->
  ?compact_min_dead_fraction:float ->
  ?clock:(unit -> float) ->
  ?domains:int ->
  unit ->
  t
(** Opens (or initialises) a pack directory.  [sync_window] (default
    0.05s) is the group-fsync batch window measured on [clock]
    (default wall clock; simulations pass [Engine.now]).
    [segment_max_bytes] (default 8 MiB) rolls the active segment.
    [compact_min_dead_fraction] (default 0.25) is the dead-byte
    fraction beyond which GC compacts a segment.  [domains] (default
    1) fans the recovery scan — per-segment image load + record-frame
    walk — across that many domains; index construction stays
    sequential in segment order, so the recovered state is identical
    at any setting. *)

val dir : t -> string
val recovery : t -> recovery

(** {1 Objects} *)

val put : t -> oid:string -> data:string -> bool
(** Appends the object unless already present; [true] if appended. *)

val find : t -> string -> string option
val mem : t -> string -> bool

val oids : t -> string list
(** All live object ids, unordered. *)

(** {1 Generations} *)

val land_generation : t -> root:string -> timestamp:float -> message:string -> int
(** Pins [root] as the next generation; returns its number.  O(1):
    one record appended to the generation log, synced with the same
    batch as the object data. *)

val generations : t -> gen list
(** Oldest first. *)

val last_generation : t -> int
(** 0 before any pin. *)

val durable_generation : t -> int
(** Newest generation fully fsynced — survives [kill -9]. *)

(** {1 Durability} *)

val sync : t -> unit
(** Flush + fsync segment and generation log (one batch). *)

val pending_bytes : t -> int
(** Bytes buffered but not yet fsynced (would be lost by a crash). *)

val pending_data_bytes : t -> int
(** The segment-buffer part of {!pending_bytes} (excluding buffered
    generation pins) — the range [crash]'s [surviving_data_bytes]
    cuts. *)

val crash : t -> ?surviving_data_bytes:int -> ?surviving_gen_bytes:int -> unit -> unit
(** Models [kill -9]: at most the given prefixes of the unsynced
    buffers reach disk (defaults 0) — a prefix that cuts a record
    mid-payload leaves a torn tail for recovery to truncate.  The
    handle is unusable afterwards; reopen the directory with
    {!create}. *)

val close : t -> unit
(** Graceful shutdown: {!sync} then close descriptors. *)

(** {1 Garbage collection} *)

val gc : t -> live:(string -> bool) -> keep_gens:gen list -> gc_stats
(** Mark-and-sweep from the caller's liveness predicate: drops dead
    objects from the index, compacts segments whose dead fraction
    exceeds the threshold (copy-live-forward into the active segment,
    manifest swap, delete), and rewrites the generation log to exactly
    [keep_gens].  Crash-safe: an interruption leaves either the old
    segments, or old + new copies (deduplicated on reopen), never a
    state that loses live objects. *)

(** {1 Counters} *)

val object_count : t -> int
val data_bytes : t -> int
(** Payload data bytes of live objects (= the serialized-object bytes
    a memory store would hold). *)

val file_bytes : t -> int
(** Total segment bytes including framing, dead records and pending
    appends. *)

val dead_bytes : t -> int
(** [file_bytes] not accounted to a live record. *)

val segment_count : t -> int
val appends : t -> int
val fsync_batches : t -> int
val gc_runs : t -> int
val gc_reclaimed_objects : t -> int
val gc_reclaimed_bytes : t -> int
(** Cumulative segment-file bytes reclaimed by GC. *)
