(** On-disk framing for pack files: length-prefixed, checksummed
    records.

    Every entry in a pack segment (and in the generations log) is one
    record:

    {v
      'R' | payload_len : u32 LE | md5(payload) : 16 bytes | payload
      payload := oid_len : u16 LE | oid | data
    v}

    The framing is what makes crash recovery honest: a [kill -9]
    mid-write leaves a {e torn tail} (fewer bytes than the header
    promises), bit rot leaves a {e checksum-corrupt} record whose
    declared length still lets the scan skip it, and a lost write
    cache leaves a {e truncated} file — {!scan} classifies all three
    without crashing. *)

val header_bytes : int
(** Bytes of framing before the payload (magic + length + checksum). *)

val encode : oid:string -> data:string -> string
(** One complete record, ready to append. *)

val decode : string -> (string * string) option
(** [decode record] is [Some (oid, data)] when [record] is exactly one
    well-formed record (checksum verified); [None] otherwise. *)

type item =
  | Good of { off : int; size : int; oid : string; data : string }
      (** verified record: [size] bytes starting at [off] *)
  | Corrupt of { off : int; size : int }
      (** framing intact but checksum failed — skipped, not fatal *)

type tail =
  | Clean
  | Torn of { off : int; bytes : int }
      (** trailing bytes too short for the record they start:
          a crash mid-append; truncate at [off] *)
  | Framing_lost of { off : int; bytes : int }
      (** bytes at [off] do not start with the record magic: framing
          cannot be recovered past this point; truncate at [off] *)

val scan : string -> item list * tail
(** Walks a whole file image record by record.  Returns the records in
    file order plus the classification of the tail. *)
