let magic = 'R'
let checksum_bytes = 16
let header_bytes = 1 + 4 + checksum_bytes

let encode ~oid ~data =
  if String.length oid > 0xffff then invalid_arg "Record.encode: oid too long";
  let payload = Buffer.create (2 + String.length oid + String.length data) in
  Buffer.add_uint16_le payload (String.length oid);
  Buffer.add_string payload oid;
  Buffer.add_string payload data;
  let payload = Buffer.contents payload in
  let out = Buffer.create (header_bytes + String.length payload) in
  Buffer.add_char out magic;
  Buffer.add_int32_le out (Int32.of_int (String.length payload));
  Buffer.add_string out (Digest.string payload);
  Buffer.add_string out payload;
  Buffer.contents out

let decode_payload payload =
  if String.length payload < 2 then None
  else begin
    let oid_len = Char.code payload.[0] lor (Char.code payload.[1] lsl 8) in
    if String.length payload < 2 + oid_len then None
    else
      Some
        ( String.sub payload 2 oid_len,
          String.sub payload (2 + oid_len) (String.length payload - 2 - oid_len) )
  end

let decode record =
  if String.length record < header_bytes then None
  else if record.[0] <> magic then None
  else begin
    let len = Int32.to_int (String.get_int32_le record 1) in
    if len < 0 || String.length record <> header_bytes + len then None
    else begin
      let payload = String.sub record header_bytes len in
      if Digest.string payload <> String.sub record 5 checksum_bytes then None
      else decode_payload payload
    end
  end

type item =
  | Good of { off : int; size : int; oid : string; data : string }
  | Corrupt of { off : int; size : int }

type tail =
  | Clean
  | Torn of { off : int; bytes : int }
  | Framing_lost of { off : int; bytes : int }

let scan image =
  let total = String.length image in
  let rec walk off acc =
    if off = total then List.rev acc, Clean
    else if off + header_bytes > total then
      List.rev acc, Torn { off; bytes = total - off }
    else if image.[off] <> magic then
      List.rev acc, Framing_lost { off; bytes = total - off }
    else begin
      let len = Int32.to_int (String.get_int32_le image (off + 1)) in
      if len < 0 then List.rev acc, Framing_lost { off; bytes = total - off }
      else if off + header_bytes + len > total then
        List.rev acc, Torn { off; bytes = total - off }
      else begin
        let size = header_bytes + len in
        let payload = String.sub image (off + header_bytes) len in
        let item =
          if Digest.string payload = String.sub image (off + 5) checksum_bytes then
            match decode_payload payload with
            | Some (oid, data) -> Good { off; size; oid; data }
            | None -> Corrupt { off; size }
          else Corrupt { off; size }
        in
        walk (off + size) (item :: acc)
      end
    end
  in
  walk 0 []
