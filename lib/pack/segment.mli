(** One append-only pack segment file ([pack-NNNNNN.seg]).

    Appends accumulate in a write buffer; nothing reaches the file
    until {!flush_and_sync}, which writes the buffer and fsyncs in one
    step — so the buffer is exactly the data a [kill -9] would lose,
    and {!crash} can model a crash that persists only a prefix of it
    (a torn tail).  Reads are served from the file or, for offsets
    past the synced size, from the buffer — so an unsynced object is
    readable by its own process (page-cache semantics) while remaining
    honestly volatile. *)

type t

val create : dir:string -> id:int -> t
(** Fresh empty segment (truncates any leftover file of that id). *)

val open_existing : dir:string -> id:int -> t
(** Opens an existing segment for reads and further appends. *)

val id : t -> int
val path : t -> string

val file_bytes : t -> int
(** Bytes on disk (synced or crash-persisted). *)

val pending_bytes : t -> int
(** Buffered bytes that would be lost by a crash right now. *)

val total_bytes : t -> int
(** [file_bytes + pending_bytes]. *)

val append : t -> string -> int
(** Buffers the bytes; returns the offset the record will occupy. *)

val read : t -> off:int -> len:int -> string
(** [len] bytes at [off]; transparently spans disk and buffer. *)

val load : t -> string
(** Whole segment image, disk then buffer — what a scan sees. *)

val load_disk : t -> string
(** On-disk image only — what a scan after a crash would see. *)

val truncate : t -> int -> unit
(** Cuts the {e file} to the given size (recovery of a torn tail).
    Only meaningful on a freshly opened segment with an empty
    buffer. *)

val flush_and_sync : t -> unit
(** Writes the buffer to the file and fsyncs.  No-op when empty. *)

val crash : t -> surviving:int -> unit
(** Models [kill -9]: at most [surviving] bytes of the buffer reach
    the file (no fsync — the bytes that happened to hit the platter),
    the rest vanish, and all descriptors close.  The segment is
    unusable afterwards. *)

val close : t -> unit
val delete : t -> unit
(** Closes and removes the file. *)
