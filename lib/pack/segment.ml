type t = {
  sid : int;
  spath : string;
  mutable disk : int;              (* bytes on disk *)
  buffer : Buffer.t;               (* appended but not yet flushed *)
  mutable wfd : Unix.file_descr option;
  mutable rfd : Unix.file_descr option;
  mutable closed : bool;
}

let filename ~dir ~id = Filename.concat dir (Printf.sprintf "pack-%06d.seg" id)

let create ~dir ~id =
  let spath = filename ~dir ~id in
  let wfd = Unix.openfile spath [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  {
    sid = id;
    spath;
    disk = 0;
    buffer = Buffer.create 4096;
    wfd = Some wfd;
    rfd = None;
    closed = false;
  }

let open_existing ~dir ~id =
  let spath = filename ~dir ~id in
  let disk = (Unix.stat spath).Unix.st_size in
  {
    sid = id;
    spath;
    disk;
    buffer = Buffer.create 4096;
    wfd = None;
    rfd = None;
    closed = false;
  }

let id t = t.sid
let path t = t.spath
let file_bytes t = t.disk
let pending_bytes t = Buffer.length t.buffer
let total_bytes t = t.disk + Buffer.length t.buffer

let check_open t = if t.closed then invalid_arg "Segment: use after close"

let writer t =
  match t.wfd with
  | Some fd -> fd
  | None ->
      let fd = Unix.openfile t.spath [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644 in
      t.wfd <- Some fd;
      fd

let reader t =
  match t.rfd with
  | Some fd -> fd
  | None ->
      let fd = Unix.openfile t.spath [ Unix.O_RDONLY ] 0o644 in
      t.rfd <- Some fd;
      fd

let append t bytes =
  check_open t;
  let off = total_bytes t in
  Buffer.add_string t.buffer bytes;
  off

let write_all fd s pos len =
  let written = ref 0 in
  while !written < len do
    written := !written + Unix.write_substring fd s (pos + !written) (len - !written)
  done

let read_disk t ~off ~len =
  let fd = reader t in
  ignore (Unix.lseek fd off Unix.SEEK_SET);
  let buf = Bytes.create len in
  let got = ref 0 in
  let eof = ref false in
  while (not !eof) && !got < len do
    let n = Unix.read fd buf !got (len - !got) in
    if n = 0 then eof := true else got := !got + n
  done;
  if !got < len then invalid_arg "Segment.read: short read";
  Bytes.unsafe_to_string buf

let read t ~off ~len =
  check_open t;
  if off + len <= t.disk then read_disk t ~off ~len
  else if off >= t.disk then Buffer.sub t.buffer (off - t.disk) len
  else
    (* spans the disk/buffer boundary *)
    read_disk t ~off ~len:(t.disk - off) ^ Buffer.sub t.buffer 0 (len - (t.disk - off))

let load t =
  check_open t;
  (if t.disk = 0 then "" else read_disk t ~off:0 ~len:t.disk) ^ Buffer.contents t.buffer

let load_disk t =
  check_open t;
  if t.disk = 0 then "" else read_disk t ~off:0 ~len:t.disk

let truncate t size =
  check_open t;
  if Buffer.length t.buffer > 0 then invalid_arg "Segment.truncate: pending appends";
  if size < t.disk then begin
    let fd = writer t in
    Unix.ftruncate fd size;
    t.disk <- size
  end

let flush_and_sync t =
  check_open t;
  if Buffer.length t.buffer > 0 then begin
    let contents = Buffer.contents t.buffer in
    let fd = writer t in
    write_all fd contents 0 (String.length contents);
    Unix.fsync fd;
    t.disk <- t.disk + String.length contents;
    Buffer.clear t.buffer
  end

let close_fds t =
  (match t.wfd with Some fd -> Unix.close fd | None -> ());
  (match t.rfd with Some fd -> Unix.close fd | None -> ());
  t.wfd <- None;
  t.rfd <- None

let crash t ~surviving =
  check_open t;
  let surviving = max 0 (min surviving (Buffer.length t.buffer)) in
  if surviving > 0 then begin
    let contents = Buffer.sub t.buffer 0 surviving in
    let fd = writer t in
    write_all fd contents 0 surviving;
    t.disk <- t.disk + String.length contents
  end;
  Buffer.clear t.buffer;
  close_fds t;
  t.closed <- true

let close t =
  if not t.closed then begin
    flush_and_sync t;
    close_fds t;
    t.closed <- true
  end

let delete t =
  if not t.closed then begin
    close_fds t;
    t.closed <- true
  end;
  if Sys.file_exists t.spath then Sys.remove t.spath
