type loc = { l_seg : int; l_off : int; l_len : int; l_data : int }

type gen = { g_num : int; g_root : string; g_time : float; g_message : string }

type recovery = {
  segments_scanned : int;
  records_indexed : int;
  duplicates_skipped : int;
  corrupt_skipped : int;
  torn_tail_bytes : int;
  generations_read : int;
  generations_corrupt_skipped : int;
  generation_tail_bytes : int;
}

type gc_stats = {
  gc_live_objects : int;
  gc_swept_objects : int;
  gc_swept_data_bytes : int;
  gc_segments_compacted : int;
  gc_segments_deleted : int;
  gc_file_bytes_before : int;
  gc_file_bytes_after : int;
  gc_generations_dropped : int;
}

type t = {
  pdir : string;
  clock : unit -> float;
  sync_window : float;
  segment_max_bytes : int;
  compact_min_dead_fraction : float;
  mutable segs : Segment.t list;  (* sealed, oldest first *)
  mutable active : Segment.t;
  seg_by_id : (int, Segment.t) Hashtbl.t;
  index : (string, loc) Hashtbl.t;
  mutable live_record_bytes : int;
  mutable live_data_bytes : int;
  gens_path : string;
  mutable gens : gen list;  (* newest first *)
  gens_pending : Buffer.t;
  mutable gen_count : int;
  mutable durable_gen : int;
  mutable batch_start : float option;
  mutable nappends : int;
  mutable nbatches : int;
  mutable ngc_runs : int;
  mutable ngc_objects : int;
  mutable ngc_bytes : int;
  precovery : recovery;
  mutable closed : bool;
}

let manifest_name = "MANIFEST"
let gens_name = "generations.log"
let snapshot_name = "live.idx"

let check_open t = if t.closed then invalid_arg "Pack: store is closed (crashed?)"

(* --- generation-log payload codec ----------------------------------- *)

let encode_gen g =
  Record.encode ~oid:g.g_root
    ~data:(Printf.sprintf "%d\000%.6f\000%s" g.g_num g.g_time g.g_message)

let decode_gen ~root data =
  match String.index_opt data '\000' with
  | None -> None
  | Some i -> (
      match String.index_from_opt data (i + 1) '\000' with
      | None -> None
      | Some j -> (
          match
            ( int_of_string_opt (String.sub data 0 i),
              float_of_string_opt (String.sub data (i + 1) (j - i - 1)) )
          with
          | Some num, Some time ->
              Some
                {
                  g_num = num;
                  g_root = root;
                  g_time = time;
                  g_message = String.sub data (j + 1) (String.length data - j - 1);
                }
          | _ -> None))

(* --- directory helpers ------------------------------------------------ *)

let rec mkdirs d =
  if d <> "." && d <> "/" && not (Sys.file_exists d) then begin
    mkdirs (Filename.dirname d);
    (try Sys.mkdir d 0o755 with Sys_error _ -> ())
  end

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      Unix.close fd

let segment_id_of_filename name =
  if
    String.length name = 15
    && String.sub name 0 5 = "pack-"
    && Filename.check_suffix name ".seg"
  then int_of_string_opt (String.sub name 5 6)
  else None

let read_manifest dir =
  let path = Filename.concat dir manifest_name in
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in path in
    let n = in_channel_length ic in
    let text = really_input_string ic n in
    close_in ic;
    let lines = String.split_on_char '\n' text in
    let max_id = ref (-1) and listed = ref [] in
    List.iter
      (fun line ->
        match String.split_on_char ' ' line with
        | [ "max"; n ] -> ( match int_of_string_opt n with Some n -> max_id := n | None -> ())
        | [ "seg"; n ] -> (
            match int_of_string_opt n with Some n -> listed := n :: !listed | None -> ())
        | _ -> ())
      lines;
    Some (!max_id, !listed)
  end

let write_manifest t =
  let tmp = Filename.concat t.pdir (manifest_name ^ ".tmp") in
  let max_id =
    List.fold_left (fun acc s -> max acc (Segment.id s)) (Segment.id t.active) t.segs
  in
  let oc = open_out tmp in
  Printf.fprintf oc "max %d\n" max_id;
  List.iter (fun s -> Printf.fprintf oc "seg %d\n" (Segment.id s)) t.segs;
  Printf.fprintf oc "seg %d\n" (Segment.id t.active);
  close_out oc;
  Sys.rename tmp (Filename.concat t.pdir manifest_name);
  fsync_dir t.pdir

(* --- liveness snapshot -------------------------------------------------- *)

(* GC drops dead oids from the index but leaves their records in any
   segment below the compaction threshold — so a reopen's raw scan
   would resurrect them.  The snapshot, rewritten atomically by each
   GC, fences that: it lists the live oids plus a per-segment
   watermark (the synced size at GC time).  A scanned record below
   its segment's watermark and absent from the oid set is GC-dead;
   anything past a watermark (or in a newer segment) postdates the GC
   and is live — which is what lets a swept oid be re-put later. *)

let encode_snapshot ~watermarks ~oids =
  let buf = Buffer.create 4096 in
  Buffer.add_int32_le buf (Int32.of_int (List.length watermarks));
  List.iter
    (fun (id, mark) ->
      Buffer.add_int32_le buf (Int32.of_int id);
      Buffer.add_int32_le buf (Int32.of_int mark))
    watermarks;
  Buffer.add_int32_le buf (Int32.of_int (List.length oids));
  List.iter
    (fun oid ->
      Buffer.add_uint16_le buf (String.length oid);
      Buffer.add_string buf oid)
    oids;
  Record.encode ~oid:"snapshot" ~data:(Buffer.contents buf)

let decode_snapshot data =
  try
    let pos = ref 0 in
    let u32 () =
      let v = Int32.to_int (String.get_int32_le data !pos) in
      pos := !pos + 4;
      v
    in
    let watermarks = Hashtbl.create 16 and live = Hashtbl.create 4096 in
    let nsegs = u32 () in
    for _ = 1 to nsegs do
      let id = u32 () in
      let mark = u32 () in
      Hashtbl.replace watermarks id mark
    done;
    let noids = u32 () in
    for _ = 1 to noids do
      let len = String.get_uint16_le data !pos in
      pos := !pos + 2;
      Hashtbl.replace live (String.sub data !pos len) ();
      pos := !pos + len
    done;
    Some (watermarks, live)
  with Invalid_argument _ -> None

let read_snapshot dir =
  let path = Filename.concat dir snapshot_name in
  if not (Sys.file_exists path) then None
  else begin
    let ic = open_in_bin path in
    let n = in_channel_length ic in
    let image = really_input_string ic n in
    close_in ic;
    let items, _tail = Record.scan image in
    List.fold_left
      (fun acc item ->
        match item with
        | Record.Good { oid = "snapshot"; data; _ } -> (
            match decode_snapshot data with Some s -> Some s | None -> acc)
        | _ -> acc)
      None items
  end

(* --- open / recovery -------------------------------------------------- *)

let create ~dir ?(sync_window = 0.05) ?(segment_max_bytes = 8 * 1024 * 1024)
    ?(compact_min_dead_fraction = 0.25) ?(clock = Unix.gettimeofday)
    ?(domains = 1) () =
  mkdirs dir;
  let existing =
    Array.to_list (Sys.readdir dir)
    |> List.filter_map segment_id_of_filename
    |> List.sort Int.compare
  in
  (* An interrupted GC can leave segments that were compacted away but
     not yet deleted: the manifest names the surviving set at the last
     swap, and anything newer than its max id is post-GC growth. *)
  let valid =
    match read_manifest dir with
    | None -> existing
    | Some (max_id, listed) ->
        List.filter
          (fun id ->
            if id > max_id || List.mem id listed then true
            else begin
              Sys.remove (Filename.concat dir (Printf.sprintf "pack-%06d.seg" id));
              false
            end)
          existing
  in
  let index = Hashtbl.create 4096 in
  let seg_by_id = Hashtbl.create 16 in
  let live_record_bytes = ref 0 and live_data_bytes = ref 0 in
  let records_indexed = ref 0
  and duplicates = ref 0
  and corrupt = ref 0
  and torn = ref 0 in
  let snapshot = read_snapshot dir in
  let gc_dead id off oid =
    match snapshot with
    | None -> false
    | Some (watermarks, live) -> (
        match Hashtbl.find_opt watermarks id with
        | Some mark when off < mark -> not (Hashtbl.mem live oid)
        | Some _ | None -> false)
  in
  (* Recovery is two-phase so it can use multiple domains.  The scan
     phase — load each segment image and walk its record framing, the
     bulk of the work — fans out across the pool: a segment is scanned
     by exactly one worker and segments never share file descriptors.
     The apply phase below stays sequential, in segment order (oldest
     first), because duplicate-skip and GC-dead decisions depend on
     which record the whole pack saw first. *)
  let scan_pool = Cm_parallel.Pool.create ~domains () in
  let scanned =
    Cm_parallel.Pool.map_list scan_pool
      (fun id ->
        let seg = Segment.open_existing ~dir ~id in
        let items, tail = Record.scan (Segment.load_disk seg) in
        id, seg, items, tail)
      valid
  in
  let opened =
    List.map
      (fun (id, seg, items, tail) ->
        List.iter
          (fun item ->
            match item with
            | Record.Good { off; size; oid; data } ->
                if Hashtbl.mem index oid then incr duplicates
                else if gc_dead id off oid then
                  (* swept by a past GC but under the compaction
                     threshold: the record is still on disk (it is in
                     dead_bytes), it just must not resurrect *)
                  ()
                else begin
                  Hashtbl.replace index oid
                    { l_seg = id; l_off = off; l_len = size; l_data = String.length data };
                  live_record_bytes := !live_record_bytes + size;
                  live_data_bytes := !live_data_bytes + String.length data;
                  incr records_indexed
                end
            | Record.Corrupt _ -> incr corrupt)
          items;
        (match tail with
        | Record.Clean -> ()
        | Record.Torn { off; bytes } | Record.Framing_lost { off; bytes } ->
            Segment.truncate seg off;
            torn := !torn + bytes);
        Hashtbl.replace seg_by_id id seg;
        seg)
      scanned
  in
  (* Generation log: same framing, same recovery discipline. *)
  let gens_path = Filename.concat dir gens_name in
  let gens = ref []
  and gens_read = ref 0
  and gens_corrupt = ref 0
  and gens_torn = ref 0
  and gen_count = ref 0 in
  (if Sys.file_exists gens_path then begin
     let ic = open_in_bin gens_path in
     let n = in_channel_length ic in
     let image = really_input_string ic n in
     close_in ic;
     let items, tail = Record.scan image in
     List.iter
       (fun item ->
         match item with
         | Record.Good { oid; data; _ } -> (
             match decode_gen ~root:oid data with
             | Some g ->
                 gens := g :: !gens;
                 gen_count := max !gen_count g.g_num;
                 incr gens_read
             | None -> incr gens_corrupt)
         | Record.Corrupt _ -> incr gens_corrupt)
       items;
     match tail with
     | Record.Clean -> ()
     | Record.Torn { off; bytes } | Record.Framing_lost { off; bytes } ->
         gens_torn := bytes;
         let fd = Unix.openfile gens_path [ Unix.O_WRONLY ] 0o644 in
         Unix.ftruncate fd off;
         Unix.close fd
   end);
  let active, segs =
    match List.rev opened with
    | last :: rest when Segment.file_bytes last < segment_max_bytes ->
        last, List.rev rest
    | all_rev ->
        let id =
          match all_rev with [] -> 0 | last :: _ -> Segment.id last + 1
        in
        let seg = Segment.create ~dir ~id in
        Hashtbl.replace seg_by_id id seg;
        seg, List.rev all_rev
  in
  {
    pdir = dir;
    clock;
    sync_window;
    segment_max_bytes;
    compact_min_dead_fraction;
    segs;
    active;
    seg_by_id;
    index;
    live_record_bytes = !live_record_bytes;
    live_data_bytes = !live_data_bytes;
    gens_path;
    gens = !gens;
    gens_pending = Buffer.create 256;
    gen_count = !gen_count;
    durable_gen = !gen_count;
    batch_start = None;
    nappends = 0;
    nbatches = 0;
    ngc_runs = 0;
    ngc_objects = 0;
    ngc_bytes = 0;
    precovery =
      {
        segments_scanned = List.length valid;
        records_indexed = !records_indexed;
        duplicates_skipped = !duplicates;
        corrupt_skipped = !corrupt;
        torn_tail_bytes = !torn;
        generations_read = !gens_read;
        generations_corrupt_skipped = !gens_corrupt;
        generation_tail_bytes = !gens_torn;
      };
    closed = false;
  }

let dir t = t.pdir
let recovery t = t.precovery

(* --- durability -------------------------------------------------------- *)

let sync t =
  check_open t;
  let dirty = Segment.pending_bytes t.active > 0 || Buffer.length t.gens_pending > 0 in
  (* Object data first, then the pins that reference it: a generation
     record never becomes durable ahead of its objects. *)
  Segment.flush_and_sync t.active;
  if Buffer.length t.gens_pending > 0 then begin
    let contents = Buffer.contents t.gens_pending in
    let fd =
      Unix.openfile t.gens_path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
    in
    let written = ref 0 in
    while !written < String.length contents do
      written :=
        !written
        + Unix.write_substring fd contents !written (String.length contents - !written)
    done;
    Unix.fsync fd;
    Unix.close fd;
    Buffer.clear t.gens_pending
  end;
  t.durable_gen <- t.gen_count;
  t.batch_start <- None;
  if dirty then t.nbatches <- t.nbatches + 1

let maybe_sync t =
  match t.batch_start with
  | None -> t.batch_start <- Some (t.clock ())
  | Some started -> if t.clock () -. started >= t.sync_window then sync t

let pending_bytes t = Segment.pending_bytes t.active + Buffer.length t.gens_pending
let pending_data_bytes t = Segment.pending_bytes t.active

(* --- objects ----------------------------------------------------------- *)

let mem t oid = Hashtbl.mem t.index oid

let roll_if_needed t size =
  if
    Segment.total_bytes t.active > 0
    && Segment.total_bytes t.active + size > t.segment_max_bytes
  then begin
    Segment.flush_and_sync t.active;
    let id = Segment.id t.active + 1 in
    t.segs <- t.segs @ [ t.active ];
    let seg = Segment.create ~dir:t.pdir ~id in
    Hashtbl.replace t.seg_by_id id seg;
    t.active <- seg
  end

let put t ~oid ~data =
  check_open t;
  if mem t oid then false
  else begin
    let record = Record.encode ~oid ~data in
    roll_if_needed t (String.length record);
    let off = Segment.append t.active record in
    Hashtbl.replace t.index oid
      {
        l_seg = Segment.id t.active;
        l_off = off;
        l_len = String.length record;
        l_data = String.length data;
      };
    t.live_record_bytes <- t.live_record_bytes + String.length record;
    t.live_data_bytes <- t.live_data_bytes + String.length data;
    t.nappends <- t.nappends + 1;
    maybe_sync t;
    true
  end

let find t oid =
  check_open t;
  match Hashtbl.find_opt t.index oid with
  | None -> None
  | Some loc -> (
      match Hashtbl.find_opt t.seg_by_id loc.l_seg with
      | None -> None
      | Some seg -> (
          match Record.decode (Segment.read seg ~off:loc.l_off ~len:loc.l_len) with
          | Some (stored_oid, data) when String.equal stored_oid oid -> Some data
          | Some _ | None -> None))

let oids t =
  check_open t;
  Hashtbl.fold (fun oid _ acc -> oid :: acc) t.index []

(* --- generations ------------------------------------------------------- *)

let land_generation t ~root ~timestamp ~message =
  check_open t;
  let g =
    { g_num = t.gen_count + 1; g_root = root; g_time = timestamp; g_message = message }
  in
  Buffer.add_string t.gens_pending (encode_gen g);
  t.gens <- g :: t.gens;
  t.gen_count <- g.g_num;
  maybe_sync t;
  g.g_num

let generations t = List.rev t.gens
let last_generation t = t.gen_count
let durable_generation t = t.durable_gen

(* --- crash / close ------------------------------------------------------ *)

let crash t ?(surviving_data_bytes = 0) ?(surviving_gen_bytes = 0) () =
  check_open t;
  Segment.crash t.active ~surviving:surviving_data_bytes;
  let gen_pending = Buffer.contents t.gens_pending in
  let surviving_gen = max 0 (min surviving_gen_bytes (String.length gen_pending)) in
  if surviving_gen > 0 then begin
    let fd =
      Unix.openfile t.gens_path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
    in
    let written = ref 0 in
    while !written < surviving_gen do
      written := !written + Unix.write_substring fd gen_pending !written (surviving_gen - !written)
    done;
    Unix.close fd
  end;
  Buffer.clear t.gens_pending;
  List.iter Segment.close t.segs;
  t.closed <- true

let close t =
  if not t.closed then begin
    sync t;
    Segment.close t.active;
    List.iter Segment.close t.segs;
    t.closed <- true
  end

(* --- garbage collection ------------------------------------------------- *)

let file_bytes t =
  List.fold_left
    (fun acc s -> acc + Segment.file_bytes s)
    (Segment.total_bytes t.active)
    t.segs

let gc t ~live ~keep_gens =
  check_open t;
  sync t;
  let bytes_before = file_bytes t in
  (* Sweep: drop dead oids from the index, accounting dead bytes per
     segment so compaction can pick its targets. *)
  let dead_by_seg = Hashtbl.create 16 and live_by_seg = Hashtbl.create 16 in
  let bump table key v =
    Hashtbl.replace table key (v + Option.value ~default:0 (Hashtbl.find_opt table key))
  in
  let swept = ref 0 and swept_data = ref 0 in
  let dead = ref [] in
  Hashtbl.iter
    (fun oid loc ->
      if live oid then bump live_by_seg loc.l_seg loc.l_len
      else begin
        dead := oid :: !dead;
        bump dead_by_seg loc.l_seg loc.l_len;
        incr swept;
        swept_data := !swept_data + loc.l_data
      end)
    t.index;
  List.iter
    (fun oid ->
      match Hashtbl.find_opt t.index oid with
      | None -> ()
      | Some loc ->
          t.live_record_bytes <- t.live_record_bytes - loc.l_len;
          t.live_data_bytes <- t.live_data_bytes - loc.l_data;
          Hashtbl.remove t.index oid)
    !dead;
  (* Compact: copy-live-forward, manifest swap, delete.  A segment
     qualifies when its dead fraction (dead records plus recovery
     residue like corrupt or duplicate records) crosses the
     threshold.  The active segment is sealed first so it can be
     compacted like any other. *)
  let candidates = t.segs @ [ t.active ] in
  let should_compact seg =
    let fb = Segment.file_bytes seg in
    if fb = 0 then Segment.id seg <> Segment.id t.active
    else begin
      let live_b = Option.value ~default:0 (Hashtbl.find_opt live_by_seg (Segment.id seg)) in
      let dead_frac = 1.0 -. (float_of_int live_b /. float_of_int fb) in
      dead_frac >= t.compact_min_dead_fraction && live_b < fb
    end
  in
  let to_compact = List.filter should_compact candidates in
  let compacted = List.length to_compact in
  if to_compact <> [] then begin
    (if List.exists (fun s -> Segment.id s = Segment.id t.active) to_compact then begin
       (* Seal the active segment and start a fresh one to receive the
          surviving copies. *)
       Segment.flush_and_sync t.active;
       let id = Segment.id t.active + 1 in
       t.segs <- t.segs @ [ t.active ];
       let seg = Segment.create ~dir:t.pdir ~id in
       Hashtbl.replace t.seg_by_id id seg;
       t.active <- seg
     end);
    let compact_ids = List.map Segment.id to_compact in
    (* Live records per compacted segment, in file order. *)
    let by_seg = Hashtbl.create 16 in
    Hashtbl.iter
      (fun oid loc ->
        if List.mem loc.l_seg compact_ids then
          Hashtbl.replace by_seg loc.l_seg
            ((oid, loc) :: Option.value ~default:[] (Hashtbl.find_opt by_seg loc.l_seg)))
      t.index;
    List.iter
      (fun seg ->
        let records =
          List.sort
            (fun (_, a) (_, b) -> Int.compare a.l_off b.l_off)
            (Option.value ~default:[] (Hashtbl.find_opt by_seg (Segment.id seg)))
        in
        if records <> [] then begin
          let image = Segment.load seg in
          List.iter
            (fun (oid, loc) ->
              (* Raw byte copy: the record (checksum included) is
                 immutable, so compaction never re-encodes. *)
              let raw = String.sub image loc.l_off loc.l_len in
              roll_if_needed t loc.l_len;
              let off = Segment.append t.active raw in
              Hashtbl.replace t.index oid
                { loc with l_seg = Segment.id t.active; l_off = off })
            records
        end)
      to_compact;
    Segment.flush_and_sync t.active;
    (* Swap: drop the compacted segments from the live set, publish the
       manifest, then delete the files.  A crash before the manifest
       leaves old+new copies (deduplicated on reopen); after it, the
       orphans are removed on reopen. *)
    t.segs <- List.filter (fun s -> not (List.mem (Segment.id s) compact_ids)) t.segs;
    write_manifest t;
    List.iter
      (fun seg ->
        Hashtbl.remove t.seg_by_id (Segment.id seg);
        Segment.delete seg)
      to_compact
  end
  else write_manifest t;
  (* Rewrite the generation log to the kept pins. *)
  let kept = List.sort (fun a b -> Int.compare a.g_num b.g_num) keep_gens in
  let dropped = List.length t.gens - List.length kept in
  let tmp = t.gens_path ^ ".tmp" in
  let oc = open_out_bin tmp in
  List.iter (fun g -> output_string oc (encode_gen g)) kept;
  close_out oc;
  Sys.rename tmp t.gens_path;
  fsync_dir t.pdir;
  t.gens <- List.rev kept;
  (* Publish the liveness snapshot so a reopen's scan cannot
     resurrect the dead records still sitting in under-threshold
     segments.  Everything is synced at this point, so the on-disk
     sizes are exact watermarks. *)
  let watermarks =
    List.map (fun s -> Segment.id s, Segment.file_bytes s) (t.segs @ [ t.active ])
  in
  let live_oids = Hashtbl.fold (fun oid _ acc -> oid :: acc) t.index [] in
  let snap_tmp = Filename.concat t.pdir (snapshot_name ^ ".tmp") in
  let oc = open_out_bin snap_tmp in
  output_string oc (encode_snapshot ~watermarks ~oids:live_oids);
  close_out oc;
  Sys.rename snap_tmp (Filename.concat t.pdir snapshot_name);
  fsync_dir t.pdir;
  let bytes_after = file_bytes t in
  t.ngc_runs <- t.ngc_runs + 1;
  t.ngc_objects <- t.ngc_objects + !swept;
  t.ngc_bytes <- t.ngc_bytes + max 0 (bytes_before - bytes_after);
  {
    gc_live_objects = Hashtbl.length t.index;
    gc_swept_objects = !swept;
    gc_swept_data_bytes = !swept_data;
    gc_segments_compacted = compacted;
    gc_segments_deleted = compacted;
    gc_file_bytes_before = bytes_before;
    gc_file_bytes_after = bytes_after;
    gc_generations_dropped = max 0 dropped;
  }

(* --- counters ----------------------------------------------------------- *)

let object_count t = Hashtbl.length t.index
let data_bytes t = t.live_data_bytes
let dead_bytes t = file_bytes t - t.live_record_bytes
let segment_count t = 1 + List.length t.segs
let appends t = t.nappends
let fsync_batches t = t.nbatches
let gc_runs t = t.ngc_runs
let gc_reclaimed_objects t = t.ngc_objects
let gc_reclaimed_bytes t = t.ngc_bytes
