module Json = Cm_json.Value

type op = Above | Below

type detection = {
  alert_name : string;
  metric : string;
  op : op;
  threshold : float;
  for_duration : float;
  per_node : bool;
}

type subscription = {
  alert_prefix : string;
  oncall : string;
}

type action =
  | Restart_node
  | Reimage_node
  | Page_only

type remediation = {
  applies_to : string;
  action : action;
  cooldown : float;
}

type agg = Mean | Max | P95

type panel = {
  title : string;
  panel_metric : string;
  agg : agg;
}

type t = {
  collect : string list;
  collect_interval : float;
  detections : detection list;
  subscriptions : subscription list;
  remediations : remediation list;
  dashboard : panel list;
}

let default =
  {
    collect = [ "error_rate"; "latency_ms" ];
    collect_interval = 10.0;
    detections = [];
    subscriptions = [];
    remediations = [];
    dashboard = [];
  }

(* Watching the watchers: a rule set for the config-distribution plane
   itself.  The Zeus leader exports these gauges (see
   [Cm_zeus.Service.stats]); a distribution stall shows up as the
   staleness gauge climbing. *)
let distribution =
  {
    collect =
      [
        "zeus.leader_egress_kb";
        "zeus.fetches_skipped";
        "zeus.payloads_deduped";
        "zeus.staleness_s";
      ];
    collect_interval = 10.0;
    detections =
      [
        {
          alert_name = "zeus_propagation_stall";
          metric = "zeus.staleness_s";
          op = Above;
          threshold = 60.0;
          for_duration = 30.0;
          per_node = false;
        };
      ];
    subscriptions = [ { alert_prefix = "zeus_"; oncall = "configerator-oncall" } ];
    remediations = [];
    dashboard =
      [
        { title = "leader egress (KB)"; panel_metric = "zeus.leader_egress_kb"; agg = Max };
        { title = "fetches skipped"; panel_metric = "zeus.fetches_skipped"; agg = Max };
        { title = "payloads deduped"; panel_metric = "zeus.payloads_deduped"; agg = Max };
        { title = "max staleness (s)"; panel_metric = "zeus.staleness_s"; agg = Max };
      ];
  }

(* Commit-to-client SLO over the propagation tracker's gauges (see
   [Cm_trace.Propagation] / [Service.propagation_source]): page when
   the p99 commit-to-subscriber latency breaches the target, and show
   the fleet's worst path coverage on the dashboard. *)
let propagation_slo ?(p99_threshold = 60.0) () =
  {
    collect = [ "trace.coverage_min"; "trace.commit_to_client_p99_s" ];
    collect_interval = 5.0;
    detections =
      [
        {
          alert_name = "config_propagation_slo_breach";
          metric = "trace.commit_to_client_p99_s";
          op = Above;
          threshold = p99_threshold;
          for_duration = 0.0;
          per_node = false;
        };
      ];
    subscriptions = [ { alert_prefix = "config_"; oncall = "configerator-oncall" } ];
    remediations = [];
    dashboard =
      [
        { title = "fleet coverage (min)"; panel_metric = "trace.coverage_min"; agg = Mean };
        {
          title = "commit->client p99 (s)";
          panel_metric = "trace.commit_to_client_p99_s";
          agg = Max;
        };
      ];
  }

let agg_name = function Mean -> "mean" | Max -> "max" | P95 -> "p95"
let op_name = function Above -> "above" | Below -> "below"

let action_name = function
  | Restart_node -> "restart_node"
  | Reimage_node -> "reimage_node"
  | Page_only -> "page_only"

let to_json t =
  Json.obj
    [
      "collect", Json.List (List.map (fun m -> Json.String m) t.collect);
      "collect_interval", Json.Float t.collect_interval;
      ( "detections",
        Json.List
          (List.map
             (fun d ->
               Json.obj
                 [
                   "alert", Json.String d.alert_name;
                   "metric", Json.String d.metric;
                   "op", Json.String (op_name d.op);
                   "threshold", Json.Float d.threshold;
                   "for", Json.Float d.for_duration;
                   "per_node", Json.Bool d.per_node;
                 ])
             t.detections) );
      ( "subscriptions",
        Json.List
          (List.map
             (fun s ->
               Json.obj
                 [ "prefix", Json.String s.alert_prefix; "oncall", Json.String s.oncall ])
             t.subscriptions) );
      ( "remediations",
        Json.List
          (List.map
             (fun r ->
               Json.obj
                 [
                   "applies_to", Json.String r.applies_to;
                   "action", Json.String (action_name r.action);
                   "cooldown", Json.Float r.cooldown;
                 ])
             t.remediations) );
      ( "dashboard",
        Json.List
          (List.map
             (fun p ->
               Json.obj
                 [
                   "title", Json.String p.title;
                   "metric", Json.String p.panel_metric;
                   "agg", Json.String (agg_name p.agg);
                 ])
             t.dashboard) );
    ]

let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let string_field json field =
  match Json.member field json with
  | Some (Json.String s) -> Ok s
  | Some _ | None -> Error (Printf.sprintf "missing string field %s" field)

let float_field ?default json field =
  match Json.member field json with
  | Some v -> (
      match Json.to_float v with
      | Some f -> Ok f
      | None -> Error (Printf.sprintf "field %s must be a number" field))
  | None -> (
      match default with
      | Some d -> Ok d
      | None -> Error (Printf.sprintf "missing number field %s" field))

let list_field json field item_of =
  match Json.member field json with
  | None -> Ok []
  | Some (Json.List items) ->
      List.fold_left
        (fun acc item ->
          let* acc = acc in
          let* v = item_of item in
          Ok (acc @ [ v ]))
        (Ok []) items
  | Some _ -> Error (Printf.sprintf "field %s must be a list" field)

let detection_of_json json =
  let* alert_name = string_field json "alert" in
  let* metric = string_field json "metric" in
  let* op_text = string_field json "op" in
  let* op =
    match op_text with
    | "above" -> Ok Above
    | "below" -> Ok Below
    | other -> Error (Printf.sprintf "unknown op %s" other)
  in
  let* threshold = float_field json "threshold" in
  let* for_duration = float_field ~default:0.0 json "for" in
  let per_node =
    match Json.member "per_node" json with Some (Json.Bool b) -> b | Some _ | None -> false
  in
  Ok { alert_name; metric; op; threshold; for_duration; per_node }

let subscription_of_json json =
  let* alert_prefix = string_field json "prefix" in
  let* oncall = string_field json "oncall" in
  Ok { alert_prefix; oncall }

let remediation_of_json json =
  let* applies_to = string_field json "applies_to" in
  let* action_text = string_field json "action" in
  let* action =
    match action_text with
    | "restart_node" -> Ok Restart_node
    | "reimage_node" -> Ok Reimage_node
    | "page_only" -> Ok Page_only
    | other -> Error (Printf.sprintf "unknown action %s" other)
  in
  let* cooldown = float_field ~default:300.0 json "cooldown" in
  Ok { applies_to; action; cooldown }

let panel_of_json json =
  let* title = string_field json "title" in
  let* panel_metric = string_field json "metric" in
  let* agg =
    match Json.member "agg" json with
    | Some (Json.String "mean") | None -> Ok Mean
    | Some (Json.String "max") -> Ok Max
    | Some (Json.String "p95") -> Ok P95
    | Some _ -> Error "panel agg must be mean/max/p95"
  in
  Ok { title; panel_metric; agg }

let of_json json =
  let* collect =
    list_field json "collect" (fun item ->
        match item with
        | Json.String s -> Ok s
        | _ -> Error "collect entries must be strings")
  in
  let* collect_interval = float_field ~default:10.0 json "collect_interval" in
  let* detections = list_field json "detections" detection_of_json in
  let* subscriptions = list_field json "subscriptions" subscription_of_json in
  let* remediations = list_field json "remediations" remediation_of_json in
  let* dashboard = list_field json "dashboard" panel_of_json in
  if collect_interval <= 0.0 then Error "collect_interval must be positive"
  else Ok { collect; collect_interval; detections; subscriptions; remediations; dashboard }

let of_string s =
  match Cm_json.Parser.parse s with
  | Ok json -> of_json json
  | Error e -> Error (Format.asprintf "%a" Cm_json.Parser.pp_error e)

let to_string t = Json.to_compact_string (to_json t)
