(** The monitoring service: collects fleet metrics on the configured
    interval, evaluates the configured alert rules, pages the
    configured oncalls, and runs the configured remediations — and
    every one of those behaviors changes live when a new rules config
    arrives ("e.g., as troubleshooting requires collecting more
    monitoring data", §2).

    Runs entirely inside a {!Cm_sim.Engine} simulation; the metric
    source is a callback so tests and examples can model sick nodes. *)

type source = node:Cm_sim.Topology.node_id -> metric:string -> float option
(** Instantaneous reading of one metric on one node; [None] when the
    node does not export it. *)

val merge_sources : source list -> source
(** First source that answers wins — composes application metrics with
    infrastructure gauges (e.g. the Zeus distribution-plane counters)
    under one rule set. *)

val propagation_source :
  Cm_trace.Propagation.t -> at:Cm_sim.Topology.node_id -> source
(** Exports the propagation tracker's gauges from node [at]
    (conventionally the Zeus leader): [trace.coverage_min] (worst
    coverage across all paths at their latest committed version) and
    [trace.commit_to_client_p50_s]/[..._p99_s] (commit-to-subscriber
    latency percentiles).  Pair with {!Rules.propagation_slo} to page
    on a commit-to-client p99 SLO breach. *)

type alert_state = {
  alert : string;
  node : Cm_sim.Topology.node_id option;  (** None for fleet-level alerts *)
  since : float;                           (** when the condition started *)
  mutable fired : bool;                    (** passed for_duration and paged *)
}

type page = {
  page_time : float;
  page_alert : string;
  page_oncall : string;
  page_node : Cm_sim.Topology.node_id option;
}

type remediation_event = {
  rem_time : float;
  rem_alert : string;
  rem_node : Cm_sim.Topology.node_id;
  rem_action : Rules.action;
}

type t

val create :
  ?rules:Rules.t -> Cm_sim.Net.t -> source:source -> t
(** Starts the collection loop immediately. *)

val load_rules : t -> Rules.t -> unit
(** Live reconfiguration — what a config update delivers. *)

val load_rules_string : t -> string -> (unit, string) result

val rules : t -> Rules.t

val firing : t -> alert_state list
(** Alerts currently past their [for_duration]. *)

val pages : t -> page list
(** Every page sent, oldest first. *)

val remediations : t -> remediation_event list

val samples_collected : t -> int

val dashboard : t -> (string * float) list
(** [(panel title, aggregated value)] for every configured dashboard
    panel, computed over the latest collection round ([nan] until one
    completes or when the metric is not collected).  The layout is
    config: change the rules and the dashboard changes. *)

val dashboard_text : t -> string
(** Plain-text rendering of {!dashboard}. *)

val stop : t -> unit
