(** Monitoring rules as configs (§2):

    "Facebook's monitoring stack is controlled through config changes:
    1) what monitoring data to collect, 2) monitoring dashboard, 3)
    alert detection rules (i.e., what is considered an anomaly), 4)
    alert subscription rules (i.e., who should be paged), and 5)
    automated remediation actions, e.g., rebooting or reimaging a
    server.  All these can be dynamically changed without a code
    upgrade."

    This module is the config schema: a rule set serializes to the
    JSON artifact that Configerator distributes, and the running
    {!Service} swaps it live. *)

type op = Above | Below

type detection = {
  alert_name : string;
  metric : string;        (** which collected metric to evaluate *)
  op : op;
  threshold : float;
  for_duration : float;   (** seconds the condition must hold before firing *)
  per_node : bool;        (** evaluate each node separately vs the fleet mean *)
}

type subscription = {
  alert_prefix : string;  (** matches alert names by prefix *)
  oncall : string;        (** who gets paged *)
}

type action =
  | Restart_node          (** "rebooting ... a server" *)
  | Reimage_node          (** modeled as restart + longer delay *)
  | Page_only

type remediation = {
  applies_to : string;    (** alert-name prefix *)
  action : action;
  cooldown : float;       (** do not repeat on the same node within this window *)
}

type agg = Mean | Max | P95

type panel = {
  title : string;
  panel_metric : string;
  agg : agg;  (** how the fleet's per-node readings are summarized *)
}

type t = {
  collect : string list;          (** metrics to collect *)
  collect_interval : float;
  detections : detection list;
  subscriptions : subscription list;
  remediations : remediation list;
  dashboard : panel list;
      (** "monitoring dashboard (e.g., the layout of the key-metric
          graphs)" — also just config *)
}

val default : t
(** Collects error_rate/latency_ms every 10 s, no rules. *)

val distribution : t
(** Monitoring the config-distribution plane with itself: collects the
    Zeus leader's egress/dedup gauges plus a propagation-staleness
    metric, dashboards them, and pages the Configerator oncall when
    propagation stalls.  The metric source is built from
    [Cm_zeus.Service.stats] (see [bench/exp_dist.ml]). *)

val propagation_slo : ?p99_threshold:float -> unit -> t
(** Rule set over {!Service.propagation_source}: dashboards fleet
    coverage and commit-to-client latency, and pages
    "configerator-oncall" when the p99 commit-to-subscriber latency
    exceeds [p99_threshold] (default 60 s). *)

val to_json : t -> Cm_json.Value.t
val of_json : Cm_json.Value.t -> (t, string) result
val of_string : string -> (t, string) result
val to_string : t -> string
