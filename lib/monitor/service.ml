module Engine = Cm_sim.Engine
module Topology = Cm_sim.Topology

type source = node:Cm_sim.Topology.node_id -> metric:string -> float option

let merge_sources sources : source =
 fun ~node ~metric ->
  List.fold_left
    (fun acc source -> match acc with Some _ -> acc | None -> source ~node ~metric)
    None sources

(* Gauges from the propagation tracker, reported by one node ([at],
   conventionally the Zeus leader): fleet-wide minimum coverage at the
   latest committed version of each path, and commit-to-subscriber
   latency percentiles.  Answers [None] elsewhere so it composes with
   per-node sources under {!merge_sources}. *)
let propagation_source prop ~at : source =
 fun ~node ~metric ->
  if node <> at then None
  else
    match metric with
    | "trace.coverage_min" -> Some (Cm_trace.Propagation.min_coverage_latest prop ())
    | "trace.commit_to_client_p50_s" ->
        Some (Cm_trace.Propagation.latency_percentile prop 0.50)
    | "trace.commit_to_client_p99_s" ->
        Some (Cm_trace.Propagation.latency_percentile prop 0.99)
    | _ -> None

type alert_state = {
  alert : string;
  node : Topology.node_id option;
  since : float;
  mutable fired : bool;
}

type page = {
  page_time : float;
  page_alert : string;
  page_oncall : string;
  page_node : Topology.node_id option;
}

type remediation_event = {
  rem_time : float;
  rem_alert : string;
  rem_node : Topology.node_id;
  rem_action : Rules.action;
}

type t = {
  net : Cm_sim.Net.t;
  source : source;
  mutable current : Rules.t;
  active : (string * Topology.node_id option, alert_state) Hashtbl.t;
  mutable page_log : page list;  (* reversed *)
  mutable rem_log : remediation_event list;  (* reversed *)
  last_remediation : (string * Topology.node_id, float) Hashtbl.t;
  mutable nsamples : int;
  mutable running : bool;
  mutable last_readings : (string * Topology.node_id, float) Hashtbl.t;
}

let engine t = Cm_sim.Net.engine t.net
let topo t = Cm_sim.Net.topology t.net
let rules t = t.current
let load_rules t rules = t.current <- rules

let load_rules_string t text =
  match Rules.of_string text with
  | Ok rules ->
      load_rules t rules;
      Ok ()
  | Error _ as e -> e

let prefix_matches ~prefix name =
  String.length name >= String.length prefix
  && String.sub name 0 (String.length prefix) = prefix

let send_pages t alert node =
  List.iter
    (fun sub ->
      if prefix_matches ~prefix:sub.Rules.alert_prefix alert then
        t.page_log <-
          {
            page_time = Engine.now (engine t);
            page_alert = alert;
            page_oncall = sub.Rules.oncall;
            page_node = node;
          }
          :: t.page_log)
    t.current.Rules.subscriptions

let run_remediation t alert node =
  List.iter
    (fun rem ->
      if prefix_matches ~prefix:rem.Rules.applies_to alert then begin
        let now = Engine.now (engine t) in
        let key = alert, node in
        let cooled =
          match Hashtbl.find_opt t.last_remediation key with
          | Some last -> now -. last >= rem.Rules.cooldown
          | None -> true
        in
        if cooled then begin
          Hashtbl.replace t.last_remediation key now;
          t.rem_log <-
            { rem_time = now; rem_alert = alert; rem_node = node; rem_action = rem.Rules.action }
            :: t.rem_log;
          match rem.Rules.action with
          | Rules.Page_only -> ()
          | Rules.Restart_node | Rules.Reimage_node ->
              let downtime =
                match rem.Rules.action with Rules.Reimage_node -> 60.0 | _ -> 5.0
              in
              Topology.crash (topo t) node;
              ignore
                (Engine.schedule (engine t) ~delay:downtime (fun () ->
                     Topology.restart (topo t) node))
        end
      end)
    t.current.Rules.remediations

(* One detection evaluation for one scope (a node or the fleet). *)
let evaluate_condition detection value =
  match detection.Rules.op with
  | Rules.Above -> value > detection.Rules.threshold
  | Rules.Below -> value < detection.Rules.threshold

let track t detection node condition =
  let key = detection.Rules.alert_name, node in
  let now = Engine.now (engine t) in
  if condition then begin
    let state =
      match Hashtbl.find_opt t.active key with
      | Some state -> state
      | None ->
          let state =
            { alert = detection.Rules.alert_name; node; since = now; fired = false }
          in
          Hashtbl.replace t.active key state;
          state
    in
    if (not state.fired) && now -. state.since >= detection.Rules.for_duration then begin
      state.fired <- true;
      send_pages t detection.Rules.alert_name node;
      match node with
      | Some n -> run_remediation t detection.Rules.alert_name n
      | None -> ()
    end
  end
  else Hashtbl.remove t.active key

let collect_once t =
  let topo = topo t in
  let up_nodes =
    Array.to_list (Topology.nodes topo)
    |> List.filter (fun n -> n.Topology.up)
    |> List.map (fun n -> n.Topology.id)
  in
  (* Collection: only configured metrics are gathered at all. *)
  let readings = Hashtbl.create 64 in
  List.iter
    (fun metric ->
      List.iter
        (fun node ->
          match t.source ~node ~metric with
          | Some v ->
              t.nsamples <- t.nsamples + 1;
              Hashtbl.replace readings (metric, node) v
          | None -> ())
        up_nodes)
    t.current.Rules.collect;
  List.iter
    (fun detection ->
      let metric = detection.Rules.metric in
      if List.mem metric t.current.Rules.collect then
        if detection.Rules.per_node then
          List.iter
            (fun node ->
              match Hashtbl.find_opt readings (metric, node) with
              | Some v -> track t detection (Some node) (evaluate_condition detection v)
              | None -> ())
            up_nodes
        else begin
          let sum = ref 0.0 and n = ref 0 in
          List.iter
            (fun node ->
              match Hashtbl.find_opt readings (metric, node) with
              | Some v ->
                  sum := !sum +. v;
                  incr n
              | None -> ())
            up_nodes;
          if !n > 0 then
            track t detection None
              (evaluate_condition detection (!sum /. float_of_int !n))
        end)
    t.current.Rules.detections;
  t.last_readings <- readings

let rec loop t =
  if t.running then
    ignore
      (Engine.schedule (engine t) ~delay:t.current.Rules.collect_interval (fun () ->
           if t.running then begin
             collect_once t;
             loop t
           end))

let create ?(rules = Rules.default) net ~source =
  let t =
    {
      net;
      source;
      current = rules;
      active = Hashtbl.create 32;
      page_log = [];
      rem_log = [];
      last_remediation = Hashtbl.create 32;
      nsamples = 0;
      running = true;
      last_readings = Hashtbl.create 64;
    }
  in
  loop t;
  t

let firing t =
  Hashtbl.fold (fun _ state acc -> if state.fired then state :: acc else acc) t.active []

let pages t = List.rev t.page_log
let remediations t = List.rev t.rem_log
let samples_collected t = t.nsamples

let dashboard t =
  List.map
    (fun panel ->
      let metric = panel.Rules.panel_metric in
      let values =
        Hashtbl.fold
          (fun (m, _) v acc -> if m = metric then v :: acc else acc)
          t.last_readings []
      in
      let value =
        match values with
        | [] -> nan
        | _ -> (
            let n = List.length values in
            match panel.Rules.agg with
            | Rules.Mean -> List.fold_left ( +. ) 0.0 values /. float_of_int n
            | Rules.Max -> List.fold_left Float.max neg_infinity values
            | Rules.P95 ->
                let sorted = List.sort Float.compare values in
                let idx = min (n - 1) (int_of_float (0.95 *. float_of_int (n - 1))) in
                List.nth sorted idx)
      in
      panel.Rules.title, value)
    t.current.Rules.dashboard

let dashboard_text t =
  String.concat "\n"
    (List.map
       (fun (title, value) -> Printf.sprintf "%-28s %10.3f" title value)
       (dashboard t))

let stop t = t.running <- false
