(** PackageVessel bulk-content distribution (§3.5).

    A large config's bulk content is chunked and spread through a
    locality-aware peer-to-peer swarm; only the small metadata travels
    through Zeus.  This module implements the swarm itself plus the
    centralized-download baseline the P2P design is compared against.

    Capacity model: every server (and the storage service) has an
    upload pipe that serves one chunk at a time; a busy source queues
    requests.  That is what makes the centralized baseline collapse as
    the fleet grows — its aggregate upload capacity is constant while
    the swarm's grows with the number of peers. *)

type t

type mode =
  | P2p_local   (** prefer same-cluster, then same-region, then any peer, then storage *)
  | P2p_random  (** ignore locality: any peer with the chunk (ablation) *)
  | Central     (** every chunk straight from storage (baseline) *)

type params = {
  chunk_size : int;          (** bytes, e.g. 4 MB *)
  max_parallel : int;        (** concurrent chunk downloads per node *)
  peer_upload_bw : float;    (** bytes/s a server can serve *)
  storage_upload_bw : float; (** bytes/s the central storage can serve *)
}

val default_params : params

val create : ?params:params -> Cm_sim.Net.t -> storage:Cm_sim.Topology.node_id -> t

type content = { cname : string; cversion : int; csize : int }

val publish : t -> content -> unit
(** Uploads the bulk content to storage, making it fetchable.  Takes
    simulated time (size / storage ingest bandwidth) before the
    content becomes available. *)

val fetch :
  ?ctx:Cm_trace.Tracer.ctx ->
  ?weight:int ->
  t ->
  node:Cm_sim.Topology.node_id ->
  mode:mode ->
  content ->
  on_complete:(unit -> unit) ->
  unit
(** Starts downloading on a node; [on_complete] fires when every chunk
    has arrived.  Fetching a content the node already completed calls
    [on_complete] immediately.  Starting a fetch for a different
    version of the same name abandons the old download (metadata
    updates win — the hybrid subscription-P2P consistency story).

    With a tracer attached to the net and a traced [ctx], every chunk
    request/transfer records [pv.chunk_req]/[pv.chunk] spans and
    completion records a [pv.complete] event.

    [weight] (default 1) makes the node a cohort representative: after
    its own download completes, the remaining [weight - 1] members
    replicate the content among themselves (holder set doubling each
    round at peer upload bandwidth, bytes accounted as same-cluster
    copies) and [on_complete] fires once the whole cohort holds it —
    see {!completed_weight}. *)

val has_complete : t -> node:Cm_sim.Topology.node_id -> content -> bool

val completed_count : t -> content -> int
(** Peers holding every chunk (cohort representatives count once). *)

val completed_weight : t -> content -> int
(** Members holding every chunk, cohort weights included. *)

val storage_bytes_served : t -> int
val peer_bytes_served : t -> int
