module Engine = Cm_sim.Engine
module Net = Cm_sim.Net
module Topology = Cm_sim.Topology
module Rng = Cm_sim.Rng

type mode = P2p_local | P2p_random | Central

type params = {
  chunk_size : int;
  max_parallel : int;
  peer_upload_bw : float;
  storage_upload_bw : float;
}

let default_params =
  {
    chunk_size = 4 * 1024 * 1024;
    max_parallel = 4;
    peer_upload_bw = 2.5e8;     (* 250 MB/s per server *)
    storage_upload_bw = 2.0e9;  (* 2 GB/s for the whole storage tier *)
  }

type content = { cname : string; cversion : int; csize : int }

let key content = content.cname ^ "#" ^ string_of_int content.cversion

type download = {
  dcontent : content;
  dctx : Cm_trace.Tracer.ctx;
  dbits : Bytes.t;            (* chunk bitmap *)
  dchunks : int;
  mutable dhave : int;
  mutable dinflight : int;
  mutable dabandoned : bool;
  mutable dcompleted : bool;
  dweight : int; (* cohort weight: members this download stands for *)
  don_complete : unit -> unit;
}

type t = {
  net : Net.t;
  prm : params;
  storage : Topology.node_id;
  rng : Rng.t;
  published : (string, unit) Hashtbl.t;
  (* content key -> node -> bitmap of chunks the node holds *)
  holders : (string, (Topology.node_id, Bytes.t) Hashtbl.t) Hashtbl.t;
  complete : (string, (Topology.node_id, unit) Hashtbl.t) Hashtbl.t;
  complete_w : (string, int ref) Hashtbl.t; (* content key -> members complete *)
  active : (Topology.node_id * string, download) Hashtbl.t;
  (* name -> active version per node, to abandon superseded downloads *)
  node_version : (Topology.node_id * string, int) Hashtbl.t;
  upload_free_at : (Topology.node_id, float) Hashtbl.t;
  mutable storage_free_at : float;
  mutable storage_served : int;
  mutable peer_served : int;
}

let create ?(params = default_params) net ~storage =
  {
    net;
    prm = params;
    storage;
    rng = Rng.split (Engine.rng (Net.engine net));
    published = Hashtbl.create 8;
    holders = Hashtbl.create 8;
    complete = Hashtbl.create 8;
    complete_w = Hashtbl.create 8;
    active = Hashtbl.create 256;
    node_version = Hashtbl.create 256;
    upload_free_at = Hashtbl.create 256;
    storage_free_at = 0.0;
    storage_served = 0;
    peer_served = 0;
  }

let chunks_of t content = max 1 ((content.csize + t.prm.chunk_size - 1) / t.prm.chunk_size)

let chunk_bytes t content idx =
  let n = chunks_of t content in
  if idx = n - 1 then content.csize - ((n - 1) * t.prm.chunk_size) else t.prm.chunk_size

let bit_get bits i = Char.code (Bytes.get bits (i / 8)) land (1 lsl (i mod 8)) <> 0

let bit_set bits i =
  Bytes.set bits (i / 8) (Char.chr (Char.code (Bytes.get bits (i / 8)) lor (1 lsl (i mod 8))))

let publish t content =
  let ingest = float_of_int content.csize /. t.prm.storage_upload_bw in
  ignore
    (Engine.schedule (Net.engine t.net) ~delay:ingest (fun () ->
         Hashtbl.replace t.published (key content) ()))

let holder_table t content =
  let k = key content in
  match Hashtbl.find_opt t.holders k with
  | Some table -> table
  | None ->
      let table = Hashtbl.create 64 in
      Hashtbl.replace t.holders k table;
      table

let complete_table t content =
  let k = key content in
  match Hashtbl.find_opt t.complete k with
  | Some table -> table
  | None ->
      let table = Hashtbl.create 64 in
      Hashtbl.replace t.complete k table;
      table

let bump_complete_weight t content n =
  let k = key content in
  match Hashtbl.find_opt t.complete_w k with
  | Some r -> r := !r + n
  | None -> Hashtbl.replace t.complete_w k (ref n)

let completed_weight t content =
  match Hashtbl.find_opt t.complete_w (key content) with
  | Some r -> !r
  | None -> 0

let has_complete t ~node content = Hashtbl.mem (complete_table t content) node
let completed_count t content = Hashtbl.length (complete_table t content)
let storage_bytes_served t = t.storage_served
let peer_bytes_served t = t.peer_served

(* A source's upload pipe: returns the extra queueing delay before the
   source can start sending, and reserves the pipe. *)
let reserve_upload t source bytes =
  let now = Engine.now (Net.engine t.net) in
  if source = t.storage then begin
    let start = Float.max now t.storage_free_at in
    let duration = float_of_int bytes /. t.prm.storage_upload_bw in
    t.storage_free_at <- start +. duration;
    t.storage_served <- t.storage_served + bytes;
    start -. now +. duration
  end
  else begin
    let free_at =
      match Hashtbl.find_opt t.upload_free_at source with Some f -> f | None -> 0.0
    in
    let start = Float.max now free_at in
    let duration = float_of_int bytes /. t.prm.peer_upload_bw in
    Hashtbl.replace t.upload_free_at source (start +. duration);
    t.peer_served <- t.peer_served + bytes;
    start -. now +. duration
  end

(* Pick where to get chunk [idx] from, honoring the mode's locality
   policy. *)
let pick_source t ~node ~mode content idx =
  match mode with
  | Central -> t.storage
  | P2p_local | P2p_random ->
      let table = holder_table t content in
      let topo = Net.topology t.net in
      let candidates =
        Hashtbl.fold
          (fun peer bits acc ->
            if peer <> node && bit_get bits idx && Topology.is_up topo peer then peer :: acc
            else acc)
          table []
      in
      if candidates = [] then t.storage
      else begin
        let ranked =
          match mode with
          | P2p_random | Central -> candidates
          | P2p_local ->
              let same_cluster = List.filter (Topology.same_cluster topo node) candidates in
              if same_cluster <> [] then same_cluster
              else
                let same_region = List.filter (Topology.same_region topo node) candidates in
                if same_region <> [] then same_region else candidates
        in
        List.nth ranked (Rng.int t.rng (List.length ranked))
      end

let missing_chunks dl =
  let rec collect i acc =
    if i < 0 then acc
    else collect (i - 1) (if bit_get dl.dbits i then acc else i :: acc)
  in
  collect (dl.dchunks - 1) []

let rec request_next t ~node ~mode dl =
  if (not dl.dabandoned) && dl.dhave < dl.dchunks && dl.dinflight < t.prm.max_parallel then begin
    (* Random selection among missing chunks; duplicate in-flight
       requests are possible near the end (endgame mode) and harmless —
       a chunk that already arrived is simply ignored. *)
    match missing_chunks dl with
    | [] -> ()
    | missing ->
        let idx = List.nth missing (Rng.int t.rng (List.length missing)) in
        dl.dinflight <- dl.dinflight + 1;
        let source = pick_source t ~node ~mode dl.dcontent idx in
        let bytes = chunk_bytes t dl.dcontent idx in
        (* Request message. *)
        Net.send_reliable ~hop:"pv.chunk_req" ~ctx:dl.dctx t.net ~src:node
          ~dst:source ~bytes:256 (fun () ->
            let queue_delay = reserve_upload t source bytes in
            ignore
              (Engine.schedule (Net.engine t.net) ~delay:queue_delay (fun () ->
                   Net.send_reliable ~hop:"pv.chunk" ~ctx:dl.dctx t.net
                     ~src:source ~dst:node ~bytes (fun () ->
                       receive_chunk t ~node ~mode dl idx))));
        request_next t ~node ~mode dl
  end

and receive_chunk t ~node ~mode dl idx =
  dl.dinflight <- dl.dinflight - 1;
  if not dl.dabandoned then begin
    if not (bit_get dl.dbits idx) then begin
      bit_set dl.dbits idx;
      dl.dhave <- dl.dhave + 1;
      (* Advertise to the swarm. *)
      let table = holder_table t dl.dcontent in
      let bits =
        match Hashtbl.find_opt table node with
        | Some bits -> bits
        | None ->
            let bits = Bytes.make ((dl.dchunks / 8) + 1) '\000' in
            Hashtbl.replace table node bits;
            bits
      in
      bit_set bits idx
    end;
    if dl.dhave = dl.dchunks then begin
      if not dl.dcompleted then begin
        dl.dcompleted <- true;
        Hashtbl.replace (complete_table t dl.dcontent) node ();
        Hashtbl.remove t.active (node, key dl.dcontent);
        (match Net.tracer t.net with
        | Some tr ->
            Cm_trace.Tracer.event tr dl.dctx ~name:"pv.complete" ~dst:node
              ~tags:[ ("content", key dl.dcontent) ]
              ()
        | None -> ());
        if dl.dweight <= 1 then begin
          bump_complete_weight t dl.dcontent 1;
          dl.don_complete ()
        end
        else begin
          (* Intra-cohort replication: once the representative holds
             the content, the members spread it among themselves with
             the holder set doubling each round at peer upload
             bandwidth.  The last round is carried by the accounted
             send below; the earlier rounds are pure delay. *)
          let rest = dl.dweight - 1 in
          let rounds = ceil (Float.log2 (float_of_int dl.dweight)) in
          let per_round =
            float_of_int dl.dcontent.csize /. t.prm.peer_upload_bw
          in
          let lead_in = Float.max 0.0 (rounds -. 1.0) *. per_round in
          ignore
            (Engine.schedule (Net.engine t.net) ~delay:lead_in (fun () ->
                 t.peer_served <- t.peer_served + (rest * dl.dcontent.csize);
                 Net.send_reliable ~hop:"pv.cohort_replicate" ~ctx:dl.dctx
                   ~copies:rest t.net ~src:node ~dst:node
                   ~bytes:dl.dcontent.csize (fun () ->
                     bump_complete_weight t dl.dcontent dl.dweight;
                     dl.don_complete ())))
        end
      end
    end
    else request_next t ~node ~mode dl
  end

let fetch ?(ctx = Cm_trace.Tracer.none) ?(weight = 1) t ~node ~mode content
    ~on_complete =
  if has_complete t ~node content then on_complete ()
  else begin
    (* Supersede any older in-flight version of the same name. *)
    (match Hashtbl.find_opt t.node_version (node, content.cname) with
    | Some version when version <> content.cversion -> (
        let old_key = content.cname ^ "#" ^ string_of_int version in
        match Hashtbl.find_opt t.active (node, old_key) with
        | Some old -> old.dabandoned <- true
        | None -> ())
    | Some _ | None -> ());
    Hashtbl.replace t.node_version (node, content.cname) content.cversion;
    match Hashtbl.find_opt t.active (node, key content) with
    | Some _ -> () (* already downloading this exact version *)
    | None ->
        let nchunks = chunks_of t content in
        let dl =
          {
            dcontent = content;
            dctx = ctx;
            dbits = Bytes.make ((nchunks / 8) + 1) '\000';
            dchunks = nchunks;
            dhave = 0;
            dinflight = 0;
            dabandoned = false;
            dcompleted = false;
            dweight = weight;
            don_complete = on_complete;
          }
        in
        Hashtbl.replace t.active (node, key content) dl;
        request_next t ~node ~mode dl
  end
