(* Multicore Gatekeeper runtime.

   The hot path is [check]: millions of calls per second per domain,
   concurrent with live config updates.  The design splits the state
   three ways:

   - An immutable *snapshot* — every compiled project (restraints in
     written order, the cost-based evaluation ordering, pass
     probabilities) behind one [Atomic.t].  A reader does a single
     [Atomic.get] per check and never takes a lock; the tables inside
     a snapshot are frozen at publish time and never mutated.

   - Per-domain *execution statistics* (restraint eval/true counters,
     check counts, evaluated cost) in [Domain.DLS] accumulators.  The
     hot path writes plain ints into its own domain's arrays — no
     shared counter, no contention.  Accumulators are merged at
     reoptimize boundaries, so the cost-based ordering converges on
     fleet-wide selectivities without a shared hot spot.

   - A *writer side*: [load]/[unload]/[reoptimize] build the next
     snapshot off to the side under a writer mutex and publish it with
     an epoch-bumping atomic store.  Retired snapshots are reclaimed
     epoch-style: each domain records the epoch of the snapshot it is
     using; once every registered reader has observed a later epoch,
     the old snapshot is dropped from the retire list (the OCaml GC
     does the actual freeing — the protocol bounds how long superseded
     snapshots stay reachable and makes the lag observable).  A small
     hard cap bounds the retire list even if an idle domain never
     advances its epoch. *)

type compiled_rule = {
  restraints : Restraint.t array;  (* written order *)
  costs : float array;             (* static_cost per restraint, written order *)
  order : int array;               (* evaluation order; frozen per snapshot *)
  pass_prob : float;
  salt : string;
}

type compiled = {
  project : Project.t;
  stamp : int;        (* identity of this load: per-domain stats reset on change *)
  crules : compiled_rule array;
}

type snapshot = {
  (* Frozen at publish: readers only ever call [Hashtbl.find_opt]. *)
  projects : (string, compiled) Hashtbl.t;
  epoch : int;
}

(* Per-domain, per-project stat arrays, shaped like the compiled rules
   and keyed by the load stamp (a reload resets them). *)
type proj_stats = {
  p_stamp : int;
  evals : int array array;  (* per rule, per restraint, written indices *)
  trues : int array array;
}

type local = {
  mutable l_checks : int;
  mutable l_evals : int;
  mutable l_cost : float;
  mutable l_since_opt : int;
  mutable l_epoch : int;  (* epoch of the snapshot this domain last used *)
  tbl : (string, proj_stats) Hashtbl.t;
}

type t = {
  ctx : Restraint.ctx;
  reoptimize_every : int;
  clock : unit -> float;
  exposures : Exposure.Log.t option;
  root : snapshot Atomic.t;
  writer : Mutex.t;               (* serializes publishers, never readers *)
  registry : local list ref;
  reg_mutex : Mutex.t;            (* guards registration only *)
  dls : local Domain.DLS.key;
  stamp_counter : int Atomic.t;
  mutable retired : snapshot list;  (* under [writer] *)
  reclaimed : int Atomic.t;
}

(* Idle domains never advance their epoch; past this many retired
   snapshots the oldest are dropped anyway (safe: the GC, not this
   list, owns their memory). *)
let max_retired = 4

let create ?(ctx = { Restraint.laser = None }) ?(reoptimize_every = 1024)
    ?(clock = fun () -> 0.0) ?exposures () =
  let registry = ref [] in
  let reg_mutex = Mutex.create () in
  let dls =
    Domain.DLS.new_key (fun () ->
        let local =
          {
            l_checks = 0;
            l_evals = 0;
            l_cost = 0.0;
            l_since_opt = 0;
            l_epoch = -1;
            tbl = Hashtbl.create 16;
          }
        in
        Mutex.lock reg_mutex;
        registry := local :: !registry;
        Mutex.unlock reg_mutex;
        local)
  in
  {
    ctx;
    reoptimize_every;
    clock;
    exposures;
    root = Atomic.make { projects = Hashtbl.create 1; epoch = 0 };
    writer = Mutex.create ();
    registry;
    reg_mutex;
    dls;
    stamp_counter = Atomic.make 0;
    retired = [];
    reclaimed = Atomic.make 0;
  }

let locals t =
  Mutex.lock t.reg_mutex;
  let all = !(t.registry) in
  Mutex.unlock t.reg_mutex;
  all

(* --- compilation ----------------------------------------------------- *)

let compile_project t ?order_from project =
  let stamp = 1 + Atomic.fetch_and_add t.stamp_counter 1 in
  let crules =
    Array.of_list
      (List.mapi
         (fun rule_idx r ->
           let restraints = Array.of_list r.Project.restraints in
           let n = Array.length restraints in
           let order =
             match order_from with
             | Some (prev : compiled) when
                 rule_idx < Array.length prev.crules
                 && Array.length prev.crules.(rule_idx).order = n ->
                 Array.copy prev.crules.(rule_idx).order
             | _ -> Array.init n (fun i -> i)
           in
           {
             restraints;
             costs = Array.map Restraint.static_cost restraints;
             order;
             pass_prob = r.Project.pass_prob;
             salt = r.Project.salt;
           })
         project.Project.rules)
  in
  { project; stamp; crules }

(* --- publish / epoch reclamation ------------------------------------- *)

(* Epochs a registered domain may still be using: -1 means "never
   checked", which cannot reference any snapshot. *)
let min_reader_epoch t ~current =
  List.fold_left
    (fun acc local -> if local.l_epoch < 0 then acc else min acc local.l_epoch)
    current (locals t)

(* Caller holds [t.writer]. *)
let sweep_retired t =
  let current = (Atomic.get t.root).epoch in
  let floor = min_reader_epoch t ~current in
  let keep, drop = List.partition (fun s -> s.epoch >= floor) t.retired in
  let keep, capped =
    (* [retired] is newest-first; cap the tail. *)
    let rec split i = function
      | [] -> [], []
      | s :: rest ->
          if i >= max_retired then [], s :: rest
          else
            let k, d = split (i + 1) rest in
            s :: k, d
    in
    split 0 keep
  in
  t.retired <- keep;
  ignore (Atomic.fetch_and_add t.reclaimed (List.length drop + List.length capped))

(* Caller holds [t.writer]. *)
let publish_locked t projects =
  let old = Atomic.get t.root in
  Atomic.set t.root { projects; epoch = old.epoch + 1 };
  t.retired <- old :: t.retired;
  sweep_retired t

let with_writer t f =
  Mutex.lock t.writer;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.writer) f

let load t project =
  with_writer t (fun () ->
      let old = Atomic.get t.root in
      let projects = Hashtbl.copy old.projects in
      let name = project.Project.project_name in
      (* Carry the learned evaluation ordering across a reload when the
         rule shapes still match; the stats themselves reset. *)
      let order_from = Hashtbl.find_opt old.projects name in
      Hashtbl.replace projects name (compile_project t ?order_from project);
      publish_locked t projects)

let load_json t json =
  match Project.of_json json with
  | Ok project ->
      load t project;
      Ok ()
  | Error _ as e -> e

let unload t name =
  with_writer t (fun () ->
      let old = Atomic.get t.root in
      if Hashtbl.mem old.projects name then begin
        let projects = Hashtbl.copy old.projects in
        Hashtbl.remove projects name;
        publish_locked t projects
      end)

(* --- statistics merge ------------------------------------------------ *)

let selectivity ~evals ~trues =
  if evals = 0 then 0.5 else float_of_int trues /. float_of_int evals

(* Sum one project's per-domain counters (written-index order).
   Concurrent domains may still be bumping their plain ints; the merge
   reads whatever has landed — approximate while running, exact once
   the workload quiesces. *)
let merged_counts t compiled =
  let shape = Array.map (fun cr -> Array.length cr.restraints) compiled.crules in
  let evals = Array.map (fun n -> Array.make n 0) shape in
  let trues = Array.map (fun n -> Array.make n 0) shape in
  List.iter
    (fun local ->
      match Hashtbl.find_opt local.tbl compiled.project.Project.project_name with
      | Some stats when stats.p_stamp = compiled.stamp ->
          Array.iteri
            (fun r n ->
              for i = 0 to n - 1 do
                evals.(r).(i) <- evals.(r).(i) + stats.evals.(r).(i);
                trues.(r).(i) <- trues.(r).(i) + stats.trues.(r).(i)
              done)
            shape
      | Some _ | None -> ())
    (locals t);
  evals, trues

(* Short-circuit ordering: an AND chain stops at the first false, so
   we want restraints that are cheap and unlikely to be true first.
   Rank by cost / P(false); lower is better.  Derived from the merged
   cross-domain statistics. *)
let reorder_compiled t compiled =
  let evals, trues = merged_counts t compiled in
  let crules =
    Array.mapi
      (fun r crule ->
        let n = Array.length crule.restraints in
        let rank i =
          let p_false =
            Float.max 0.02 (1.0 -. selectivity ~evals:evals.(r).(i) ~trues:trues.(r).(i))
          in
          crule.costs.(i) /. p_false
        in
        let ranked = Array.init n (fun i -> rank i, i) in
        Array.sort
          (fun (a, i) (b, j) ->
            match Float.compare a b with 0 -> compare i j | c -> c)
          ranked;
        { crule with order = Array.map snd ranked })
      compiled.crules
  in
  { compiled with crules }

(* Merge stats and publish re-derived orderings for every project.
   Holding the writer mutex; readers are unaffected. *)
let reoptimize_locked t =
  let old = Atomic.get t.root in
  let projects = Hashtbl.create (Hashtbl.length old.projects) in
  Hashtbl.iter
    (fun name compiled -> Hashtbl.replace projects name (reorder_compiled t compiled))
    old.projects;
  publish_locked t projects

let reoptimize t = with_writer t (fun () -> reoptimize_locked t)

(* Hot-path variant: never blocks — if another domain is already
   publishing, skip this boundary and try again in [reoptimize_every]
   checks. *)
let try_reoptimize t =
  if Mutex.try_lock t.writer then
    Fun.protect ~finally:(fun () -> Mutex.unlock t.writer) (fun () ->
        reoptimize_locked t)

(* --- the check hot path ---------------------------------------------- *)

let stats_for local compiled =
  let name = compiled.project.Project.project_name in
  match Hashtbl.find_opt local.tbl name with
  | Some stats when stats.p_stamp = compiled.stamp -> stats
  | Some _ | None ->
      let shape = Array.map (fun cr -> Array.length cr.restraints) compiled.crules in
      let stats =
        {
          p_stamp = compiled.stamp;
          evals = Array.map (fun n -> Array.make n 0) shape;
          trues = Array.map (fun n -> Array.make n 0) shape;
        }
      in
      Hashtbl.replace local.tbl name stats;
      stats

let eval_rule t local stats crule ~rule_idx user ~use_order =
  let n = Array.length crule.restraints in
  let evals = stats.evals.(rule_idx) and trues = stats.trues.(rule_idx) in
  let rec scan i =
    if i >= n then true
    else begin
      let idx = if use_order then crule.order.(i) else i in
      evals.(idx) <- evals.(idx) + 1;
      local.l_evals <- local.l_evals + 1;
      local.l_cost <- local.l_cost +. crule.costs.(idx);
      if Restraint.eval t.ctx crule.restraints.(idx) user then begin
        trues.(idx) <- trues.(idx) + 1;
        scan (i + 1)
      end
      else false
    end
  in
  scan 0

let record_exposure t name user passed =
  match t.exposures with
  | None -> ()
  | Some log ->
      Exposure.Log.record log
        {
          Exposure.source = name;
          variant = (if passed then "pass" else "fail");
          user_id = user.User.id;
          segment = user.User.country;
          at = t.clock ();
          outcome = None;
        }

let check_with t name user ~use_order =
  let local = Domain.DLS.get t.dls in
  local.l_checks <- local.l_checks + 1;
  let snap = Atomic.get t.root in
  local.l_epoch <- snap.epoch;
  match Hashtbl.find_opt snap.projects name with
  | None -> false
  | Some compiled ->
      if compiled.project.Project.killed then begin
        record_exposure t name user false;
        false
      end
      else begin
        if use_order then begin
          local.l_since_opt <- local.l_since_opt + 1;
          if local.l_since_opt >= t.reoptimize_every then begin
            local.l_since_opt <- 0;
            try_reoptimize t
          end
        end;
        let stats = stats_for local compiled in
        let nrules = Array.length compiled.crules in
        let rec scan i =
          if i >= nrules then false
          else begin
            let crule = compiled.crules.(i) in
            if eval_rule t local stats crule ~rule_idx:i user ~use_order then
              Project.sticky_pass compiled.project ~rule_index:i
                { Project.restraints = []; pass_prob = crule.pass_prob; salt = crule.salt }
                user
            else scan (i + 1)
          end
        in
        let passed = scan 0 in
        record_exposure t name user passed;
        passed
      end

let check t name user = check_with t name user ~use_order:true
let check_naive t name user = check_with t name user ~use_order:false

(* --- merged observability -------------------------------------------- *)

let checks_performed t = List.fold_left (fun acc l -> acc + l.l_checks) 0 (locals t)
let evaluated_restraints t = List.fold_left (fun acc l -> acc + l.l_evals) 0 (locals t)
let evaluated_cost t = List.fold_left (fun acc l -> acc +. l.l_cost) 0.0 (locals t)

let project_names t =
  let snap = Atomic.get t.root in
  List.sort String.compare (Hashtbl.fold (fun name _ acc -> name :: acc) snap.projects [])

let restraint_stats t name =
  let snap = Atomic.get t.root in
  match Hashtbl.find_opt snap.projects name with
  | None -> []
  | Some compiled ->
      let evals, trues = merged_counts t compiled in
      List.concat
        (List.mapi
           (fun row crule ->
             Array.to_list crule.order
             |> List.map (fun idx ->
                    ( Restraint.name crule.restraints.(idx),
                      evals.(row).(idx),
                      selectivity ~evals:evals.(row).(idx) ~trues:trues.(row).(idx) )))
           (Array.to_list compiled.crules))

let domains_seen t = List.length (locals t)
let current_epoch t = (Atomic.get t.root).epoch
let snapshot_swaps t = (Atomic.get t.root).epoch
let retained_snapshots t = with_writer t (fun () -> List.length t.retired)
let reclaimed_snapshots t = Atomic.get t.reclaimed

let reclaim t =
  with_writer t (fun () -> sweep_retired t)

let exposure_log t = t.exposures
