(** Exposure logging: the record a server writes every time a gate or
    experiment decision touches a user, and the segment/time-window
    aggregations experiment analysis runs over those records (§4, §5 —
    the paper's experiments observe live outcomes per variant before a
    winner is frozen into a constant config).

    Built for the multicore check hot path: each domain appends to its
    own bounded ring buffer with no locks or atomics per record;
    analysis merges the buffers on demand. *)

type record = {
  source : string;          (** project or experiment name *)
  variant : string;         (** "pass"/"fail" for gates; arm name for experiments *)
  user_id : int64;
  segment : string;         (** e.g. the user's country *)
  at : float;               (** caller-supplied clock value *)
  outcome : float option;   (** metric observation, if any *)
}

module Log : sig
  type t

  val create : ?cap:int -> unit -> t
  (** [cap] bounds each domain's buffer (default 65536); beyond it the
      oldest records of that domain are overwritten. *)

  val record : t -> record -> unit
  (** Lock-free append to the calling domain's buffer. *)

  val length : t -> int
  (** Records currently held across all domains. *)

  val recorded : t -> int
  (** Records ever appended (≥ [length]). *)

  val dropped : t -> int
  (** Records lost to ring overwrite. *)

  val drain : t -> record list
  (** Merge every domain's buffer, ordered by [at].  Call after the
      recording domains have quiesced for an exact view. *)
end

(** {1 Aggregation} *)

val of_source : string -> record list -> record list
(** Restrict to one project/experiment. *)

val by_variant : record list -> (string * int * float) list
(** [(variant, exposures, mean outcome)] — mean is [nan] with no
    outcome-bearing records. *)

val by_segment : record list -> (string * string * int * float) list
(** [(variant, segment, exposures, mean outcome)]: per-variant
    breakdown by user segment. *)

val by_window : window:float -> record list -> (string * int * int * float) list
(** [(variant, window index, exposures, mean outcome)] where window
    [i] covers [at ∈ [i·window, (i+1)·window)]: the time series an
    experiment dashboard plots. *)

val lift : record list -> control:string -> (string * float) list
(** Relative mean-outcome lift of every other variant against
    [control]; empty if the control has no observed outcomes. *)
