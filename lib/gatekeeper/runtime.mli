(** The Gatekeeper runtime that production servers embed (§4).

    It loads project configs (delivered as live config updates), and
    serves [gk_check] at very high rates — the paper reports billions
    of checks per second site-wide (Figure 15) and notes the runtime
    "can leverage execution statistics (e.g., the execution time of a
    restraint and its probability of returning true) to guide
    efficient evaluation of the boolean tree", like an SQL engine's
    cost-based optimizer.

    {b Multicore design.}  [check] is lock-free and scales across
    OCaml domains: all compiled projects live in an immutable snapshot
    behind one [Atomic.t], so a reader does a single atomic load per
    check and never takes a lock or waits for a writer.  Config
    updates ([load]/[unload]) and ordering changes build the next
    snapshot off to the side under a writer mutex and publish it with
    an epoch-bumping swap; superseded snapshots are retired and
    reclaimed epoch-style once every reader domain has observed a
    later epoch.

    Execution statistics are accumulated per domain (no shared
    counters on the hot path) and merged at reoptimize boundaries: the
    cost-based optimizer tracks each restraint's observed selectivity
    across all domains and orders every conjunction by
    [cost / P(short-circuit)] so the cheapest, most-likely-to-fail
    restraints run first.  Expensive restraints (laser lookups) are
    pushed last unless they almost always fail. *)

type t

val create :
  ?ctx:Restraint.ctx ->
  ?reoptimize_every:int ->
  ?clock:(unit -> float) ->
  ?exposures:Exposure.Log.t ->
  unit ->
  t
(** [reoptimize_every] checks {e per domain} between ordering
    re-derivations (default 1024).  [clock] stamps exposure records
    (default: constant 0.0 — pass [Unix.gettimeofday] or a simulator
    clock).  With [exposures], every check appends a pass/fail
    exposure record to the calling domain's buffer. *)

val load : t -> Project.t -> unit
(** Install or replace a project — what happens when its JSON config
    update reaches the server.  Publishes a new snapshot; concurrent
    checks keep running against the old one until the swap and are
    never blocked.  A reload keeps the learned evaluation ordering
    (when rule shapes match) but resets the project's statistics. *)

val load_json : t -> Cm_json.Value.t -> (unit, string) result
val unload : t -> string -> unit

val check : t -> string -> User.t -> bool
(** [check t project user]: optimized evaluation.  Unknown projects
    fail closed (false).  Lock-free: one atomic snapshot load, then
    pure reads of frozen tables; statistics land in the calling
    domain's private accumulator. *)

val check_naive : t -> string -> User.t -> bool
(** Written evaluation order; semantically identical to {!check} —
    the property the ablation test asserts.  Never triggers
    reoptimization, so statistics from naive-only runs are exactly
    reproducible regardless of how many domains produced them. *)

val checks_performed : t -> int
val project_names : t -> string list

val restraint_stats : t -> string -> (string * int * float) list
(** [(restraint name, evaluations, observed selectivity)] for every
    restraint of a project, in current evaluation order, merged across
    all domains.  Exact once the checking domains have quiesced. *)

val evaluated_restraints : t -> int
(** Total restraint evaluations across all domains — the work metric
    the cost-based ordering minimizes. *)

val evaluated_cost : t -> float
(** Total static cost of evaluated restraints, merged across domains. *)

val reoptimize : t -> unit
(** Force a statistics merge and publish re-derived orderings now
    (checks trigger this automatically every [reoptimize_every]). *)

(** {1 Multicore observability} *)

val domains_seen : t -> int
(** Domains that have ever called [check] on this runtime. *)

val current_epoch : t -> int
(** Epoch of the published snapshot; bumps on every publish. *)

val snapshot_swaps : t -> int
(** Snapshots published since creation (= [current_epoch]). *)

val retained_snapshots : t -> int
(** Superseded snapshots still on the retire list (a reader domain may
    not have observed a later epoch yet). *)

val reclaimed_snapshots : t -> int
(** Superseded snapshots dropped after every reader moved past them
    ([reclaimed + retained] = [snapshot_swaps]). *)

val reclaim : t -> unit
(** Sweep the retire list now (publishes do this automatically). *)

val exposure_log : t -> Exposure.Log.t option
