(* Check-time exposure records and the aggregations experiment
   analysis runs over them.

   The log is built for the multicore check hot path: each domain
   appends to its own buffer (no locks, no atomics per record), and
   analysis merges the buffers on demand.  Buffers are bounded rings —
   a runaway recorder overwrites its own oldest records instead of
   growing without bound, and [dropped] says how many were lost. *)

type record = {
  source : string;          (* project or experiment name *)
  variant : string;         (* "pass"/"fail" for gates; arm name for experiments *)
  user_id : int64;
  segment : string;         (* e.g. the user's country *)
  at : float;               (* caller-supplied clock *)
  outcome : float option;   (* metric observation, if any *)
}

module Log = struct
  type buf = {
    mutable items : record array;
    mutable total : int;    (* records ever appended to this buffer *)
    cap : int;
  }

  type t = {
    cap : int;
    bufs : buf list ref;            (* every domain's buffer, for merging *)
    reg_mutex : Mutex.t;            (* guards registration only *)
    dls : buf Domain.DLS.key;
  }

  let create ?(cap = 65536) () =
    let cap = max 1 cap in
    let bufs = ref [] in
    let reg_mutex = Mutex.create () in
    let dls =
      Domain.DLS.new_key (fun () ->
          let buf = { items = [||]; total = 0; cap } in
          Mutex.lock reg_mutex;
          bufs := buf :: !bufs;
          Mutex.unlock reg_mutex;
          buf)
    in
    { cap; bufs; reg_mutex; dls }

  let record t r =
    let buf = Domain.DLS.get t.dls in
    let len = Array.length buf.items in
    if buf.total < buf.cap then begin
      (* Grow geometrically up to cap. *)
      if buf.total >= len then begin
        let next = Array.make (min buf.cap (max 64 (2 * len))) r in
        Array.blit buf.items 0 next 0 len;
        buf.items <- next
      end;
      buf.items.(buf.total) <- r
    end
    else buf.items.(buf.total mod buf.cap) <- r;
    buf.total <- buf.total + 1

  let buffers t =
    Mutex.lock t.reg_mutex;
    let bufs = !(t.bufs) in
    Mutex.unlock t.reg_mutex;
    bufs

  let length t =
    List.fold_left
      (fun acc buf -> acc + min buf.total (Array.length buf.items))
      0 (buffers t)

  let recorded t = List.fold_left (fun acc buf -> acc + buf.total) 0 (buffers t)
  let dropped t = List.fold_left (fun acc b -> acc + max 0 (b.total - b.cap)) 0 (buffers t)

  let drain t =
    let all =
      List.concat_map
        (fun buf ->
          Array.to_list (Array.sub buf.items 0 (min buf.total (Array.length buf.items))))
        (buffers t)
    in
    List.stable_sort (fun a b -> Float.compare a.at b.at) all
end

let of_source source records = List.filter (fun r -> r.source = source) records

(* Fold records into (key, n, outcome sum, outcomes seen) cells. *)
let aggregate key_of records =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun r ->
      let key = key_of r in
      let n, sum, seen =
        match Hashtbl.find_opt tbl key with Some c -> c | None -> 0, 0.0, 0
      in
      let sum, seen =
        match r.outcome with Some v -> sum +. v, seen + 1 | None -> sum, seen
      in
      Hashtbl.replace tbl key (n + 1, sum, seen))
    records;
  Hashtbl.fold (fun key (n, sum, seen) acc -> (key, n, sum, seen) :: acc) tbl []

let mean sum seen = if seen = 0 then nan else sum /. float_of_int seen

let by_variant records =
  aggregate (fun r -> r.variant) records
  |> List.map (fun (variant, n, sum, seen) -> variant, n, mean sum seen)
  |> List.sort compare

let by_segment records =
  aggregate (fun r -> r.variant, r.segment) records
  |> List.map (fun ((variant, segment), n, sum, seen) ->
         variant, segment, n, mean sum seen)
  |> List.sort compare

let by_window ~window records =
  if window <= 0.0 then invalid_arg "Exposure.by_window: window <= 0";
  aggregate (fun r -> r.variant, int_of_float (Float.floor (r.at /. window))) records
  |> List.map (fun ((variant, win), n, sum, seen) -> variant, win, n, mean sum seen)
  |> List.sort compare

let lift records ~control =
  let cells = by_variant records in
  match List.find_opt (fun (v, _, _) -> v = control) cells with
  | None -> []
  | Some (_, _, control_mean) ->
      if Float.is_nan control_mean || control_mean = 0.0 then []
      else
        List.filter_map
          (fun (v, _, m) ->
            if v = control || Float.is_nan m then None
            else Some (v, (m -. control_mean) /. Float.abs control_mean))
          cells
