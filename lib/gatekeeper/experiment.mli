(** A/B experiments on top of Gatekeeper (§4, §5): assign each user a
    variant deterministically, log exposures and outcome metrics, and
    pick a winner.

    This is the mechanism behind the paper's VoIP echo-canceling
    example: different if-branches of a Gatekeeper-backed experiment
    hand different parameter values to the app, the experiment runs
    live, and the best parameter is then frozen into a constant
    config. *)

type variant = {
  variant_name : string;
  weight : float;          (** relative share of exposed users *)
  param : Cm_json.Value.t; (** the parameter value this arm tests *)
}

type t

val create :
  name:string ->
  ?eligibility:Restraint.t list ->
  ?exposure:float ->
  variant list ->
  t
(** [eligibility] restricts who participates (e.g. a device model);
    [exposure] is the fraction of eligible users enrolled (default
    1.0).  Weights are normalized. *)

val name : t -> string

val assign : Restraint.ctx -> t -> User.t -> variant option
(** Deterministic, sticky assignment; [None] when the user is not
    eligible or not enrolled. *)

val record : t -> User.t -> variant -> float -> unit
(** Log one outcome observation (e.g. echo score) for a user's arm. *)

(** {1 Exposure-fed analysis}

    Check-time exposure records feed the segment and time-window
    aggregations in {!Exposure}; these entry points write them. *)

val assign_logged :
  Restraint.ctx -> t -> Exposure.Log.t -> now:float -> User.t -> variant option
(** {!assign}, also appending an exposure record (variant, user
    segment, timestamp) to the calling domain's buffer on enrollment. *)

val observe : t -> Exposure.Log.t -> now:float -> User.t -> variant -> float -> unit
(** {!record} an outcome and append the outcome-bearing exposure
    record, so windowed/segmented means can be computed later. *)

val exposures : t -> Exposure.Log.t -> Exposure.record list
(** This experiment's records from the log, ready for
    [Exposure.by_variant] / [by_segment] / [by_window] / [lift]. *)

val results : t -> (string * int * float) list
(** [(variant, observations, mean outcome)] per arm. *)

val best : t -> higher_is_better:bool -> variant option
(** Arm with the best mean (requires at least one observation). *)

(** {1 Serialization} *)

val to_json : t -> Cm_json.Value.t
val of_json : Cm_json.Value.t -> (t, string) result
