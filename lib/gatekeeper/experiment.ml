module Json = Cm_json.Value

type variant = {
  variant_name : string;
  weight : float;
  param : Json.t;
}

type arm_stats = { mutable n : int; mutable sum : float }

type t = {
  ename : string;
  eligibility : Restraint.t list;
  exposure : float;
  variants : variant list;
  outcomes : (string, arm_stats) Hashtbl.t;
}

let create ~name ?(eligibility = []) ?(exposure = 1.0) variants =
  if variants = [] then invalid_arg "Experiment.create: no variants";
  { ename = name; eligibility; exposure; variants; outcomes = Hashtbl.create 8 }

let name t = t.ename

let assign ctx t user =
  let eligible =
    List.for_all (fun restraint_ -> Restraint.eval ctx restraint_ user) t.eligibility
  in
  if not eligible then None
  else begin
    let enroll_key = t.ename ^ "\000enroll\000" ^ Int64.to_string user.User.id in
    if Cm_sim.Rng.hash_to_unit enroll_key >= t.exposure then None
    else begin
      let total = List.fold_left (fun acc v -> acc +. v.weight) 0.0 t.variants in
      let arm_key = t.ename ^ "\000arm\000" ^ Int64.to_string user.User.id in
      let draw = Cm_sim.Rng.hash_to_unit arm_key *. total in
      let rec pick acc = function
        | [] -> None
        | [ last ] -> Some last
        | v :: rest -> if draw < acc +. v.weight then Some v else pick (acc +. v.weight) rest
      in
      pick 0.0 t.variants
    end
  end

let exposure_record t user variant ~now outcome =
  {
    Exposure.source = t.ename;
    variant = variant.variant_name;
    user_id = user.User.id;
    segment = user.User.country;
    at = now;
    outcome;
  }

let assign_logged ctx t log ~now user =
  match assign ctx t user with
  | None -> None
  | Some variant ->
      Exposure.Log.record log (exposure_record t user variant ~now None);
      Some variant

let record t _user variant outcome =
  match Hashtbl.find_opt t.outcomes variant.variant_name with
  | Some stats ->
      stats.n <- stats.n + 1;
      stats.sum <- stats.sum +. outcome
  | None -> Hashtbl.replace t.outcomes variant.variant_name { n = 1; sum = outcome }

let observe t log ~now user variant outcome =
  record t user variant outcome;
  Exposure.Log.record log (exposure_record t user variant ~now (Some outcome))

let exposures t log = Exposure.of_source t.ename (Exposure.Log.drain log)

let results t =
  List.map
    (fun v ->
      match Hashtbl.find_opt t.outcomes v.variant_name with
      | Some stats -> v.variant_name, stats.n, stats.sum /. float_of_int (max 1 stats.n)
      | None -> v.variant_name, 0, nan)
    t.variants

let best t ~higher_is_better =
  let observed =
    List.filter_map
      (fun v ->
        match Hashtbl.find_opt t.outcomes v.variant_name with
        | Some stats when stats.n > 0 -> Some (v, stats.sum /. float_of_int stats.n)
        | Some _ | None -> None)
      t.variants
  in
  match observed with
  | [] -> None
  | first :: rest ->
      let better (va, ma) (vb, mb) =
        if (higher_is_better && mb > ma) || ((not higher_is_better) && mb < ma) then vb, mb
        else va, ma
      in
      Some (fst (List.fold_left better first rest))

let to_json t =
  Json.obj
    [
      "experiment", Json.String t.ename;
      "exposure", Json.Float t.exposure;
      "eligibility", Json.List (List.map Restraint.to_json t.eligibility);
      ( "variants",
        Json.List
          (List.map
             (fun v ->
               Json.obj
                 [
                   "name", Json.String v.variant_name;
                   "weight", Json.Float v.weight;
                   "param", v.param;
                 ])
             t.variants) );
    ]

let of_json json =
  let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e in
  let* ename =
    match Json.member "experiment" json with
    | Some (Json.String s) -> Ok s
    | Some _ | None -> Error "experiment missing name"
  in
  let exposure =
    match Json.member "exposure" json with
    | Some v -> ( match Json.to_float v with Some f -> f | None -> 1.0)
    | None -> 1.0
  in
  let* eligibility =
    match Json.member "eligibility" json with
    | Some (Json.List items) ->
        List.fold_left
          (fun acc item ->
            match acc with
            | Error _ as e -> e
            | Ok rs -> (
                match Restraint.of_json item with
                | Ok r -> Ok (rs @ [ r ])
                | Error _ as e -> e))
          (Ok []) items
    | Some _ -> Error "eligibility must be a list"
    | None -> Ok []
  in
  let* variants =
    match Json.member "variants" json with
    | Some (Json.List items) ->
        List.fold_left
          (fun acc item ->
            match acc with
            | Error _ as e -> e
            | Ok vs -> (
                match Json.member "name" item, Json.member "param" item with
                | Some (Json.String vname), Some param ->
                    let weight =
                      match Json.member "weight" item with
                      | Some w -> ( match Json.to_float w with Some f -> f | None -> 1.0)
                      | None -> 1.0
                    in
                    Ok (vs @ [ { variant_name = vname; weight; param } ])
                | _ -> Error "variant needs name and param"))
          (Ok []) items
    | Some _ | None -> Error "experiment missing variants"
  in
  if variants = [] then Error "experiment has no variants"
  else Ok { ename; eligibility; exposure; variants; outcomes = Hashtbl.create 8 }
