type edit =
  | Keep of string
  | Del of string
  | Add of string

let split_lines text = if text = "" then [||] else Array.of_list (String.split_on_char '\n' text)

(* Standard dynamic-programming LCS.  Config files are small (median
   1KB per the paper), so the O(n*m) table is fine for them; a
   pathological pair (two large blobs rewritten wholesale) would stall
   whoever called us — the landing strip's risk scorer among them — so
   above [max_exact_cells] DP cells the middle (after common
   prefix/suffix stripping) degrades to a whole-region replace. *)
let max_exact_cells = 250_000

let diff old_text new_text =
  let a = split_lines old_text and b = split_lines new_text in
  let n = Array.length a and m = Array.length b in
  (* Strip common prefix and suffix first. *)
  let prefix = ref 0 in
  while !prefix < n && !prefix < m && a.(!prefix) = b.(!prefix) do
    incr prefix
  done;
  let suffix = ref 0 in
  while
    !suffix < n - !prefix && !suffix < m - !prefix
    && a.(n - 1 - !suffix) = b.(m - 1 - !suffix)
  do
    incr suffix
  done;
  let p = !prefix and s = !suffix in
  let an = n - p - s and bm = m - p - s in
  let edits = ref [] in
  for i = 0 to p - 1 do
    edits := Keep a.(i) :: !edits
  done;
  if an * bm > max_exact_cells then begin
    (* Size guard: replace the whole differing middle.  The script is
       not minimal but stays valid for [apply], and cost is linear. *)
    for i = 0 to an - 1 do
      edits := Del a.(p + i) :: !edits
    done;
    for j = 0 to bm - 1 do
      edits := Add b.(p + j) :: !edits
    done
  end
  else begin
    let lcs = Array.make_matrix (an + 1) (bm + 1) 0 in
    for i = an - 1 downto 0 do
      for j = bm - 1 downto 0 do
        if a.(p + i) = b.(p + j) then lcs.(i).(j) <- 1 + lcs.(i + 1).(j + 1)
        else lcs.(i).(j) <- max lcs.(i + 1).(j) lcs.(i).(j + 1)
      done
    done;
    let rec walk i j =
      if i < an && j < bm && a.(p + i) = b.(p + j) then begin
        edits := Keep a.(p + i) :: !edits;
        walk (i + 1) (j + 1)
      end
      else if j < bm && (i = an || lcs.(i).(j + 1) >= lcs.(i + 1).(j)) then begin
        edits := Add b.(p + j) :: !edits;
        walk i (j + 1)
      end
      else if i < an then begin
        edits := Del a.(p + i) :: !edits;
        walk (i + 1) j
      end
    in
    walk 0 0
  end;
  for i = n - s to n - 1 do
    edits := Keep a.(i) :: !edits
  done;
  List.rev !edits

let stats edits =
  List.fold_left
    (fun (added, deleted) edit ->
      match edit with
      | Add _ -> added + 1, deleted
      | Del _ -> added, deleted + 1
      | Keep _ -> added, deleted)
    (0, 0) edits

let line_changes old_text new_text =
  let added, deleted = stats (diff old_text new_text) in
  added + deleted

let apply old_text edits =
  let lines = Array.to_list (split_lines old_text) in
  let rec replay remaining edits acc =
    match edits, remaining with
    | [], [] -> Some (List.rev acc)
    | [], _ :: _ -> None
    | Keep line :: rest, current :: others when line = current ->
        replay others rest (line :: acc)
    | Del line :: rest, current :: others when line = current -> replay others rest acc
    | Add line :: rest, _ -> replay remaining rest (line :: acc)
    | (Keep _ | Del _) :: _, _ -> None
  in
  match replay lines edits [] with
  | Some lines -> Some (String.concat "\n" lines)
  | None -> None

let pp ppf edits =
  List.iter
    (fun edit ->
      match edit with
      | Keep line -> Format.fprintf ppf " %s@." line
      | Del line -> Format.fprintf ppf "-%s@." line
      | Add line -> Format.fprintf ppf "+%s@." line)
    edits
