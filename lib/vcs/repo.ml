type backend = Flat | Merkle

let backend_name = function Flat -> "flat" | Merkle -> "merkle"

let backend_of_string = function
  | "flat" -> Some Flat
  | "merkle" -> Some Merkle
  | _ -> None

type t = {
  rname : string;
  rstore : Store.t;
  rbackend : backend;
  mutable rhead : Store.oid option;
  mutable ncommits : int;
  (* Merkle-backend indexes (unused by the flat backend, which keeps
     its O(repo) walks on purpose — see the .mli). *)
  head_index : (string, Store.oid) Hashtbl.t;  (* path -> blob oid at head *)
  touches : (string, Store.oid list ref) Hashtbl.t;  (* path -> commits, newest first *)
  mutable rdropped : int;  (* generations dropped as incomplete on recovery *)
}

type change = string * string option

let create ?(backend = Merkle) ?(store = Store.Memory) ?(name = "configerator") () =
  {
    rname = name;
    rstore = Store.create ~backend:store ();
    rbackend = backend;
    rhead = None;
    ncommits = 0;
    head_index = Hashtbl.create 256;
    touches = Hashtbl.create 256;
    rdropped = 0;
  }

let name t = t.rname
let store t = t.rstore
let backend t = t.rbackend
let head t = t.rhead

let commit_info t oid =
  match Store.get t.rstore oid with
  | Some (Store.Commit c) -> Some c
  | Some (Store.Blob _ | Store.Tree _) | None -> None

let has_prefix ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

(* ===================================================================
   Flat backend: one wide tree mapping full paths to blob oids.  Every
   commit rebuilds and re-hashes the whole listing, and history scans
   re-diff full trees — deliberately, so the Figure-13 degradation
   curve (commit cost grows with repository size) stays reproducible.
   =================================================================== *)

let tree_of_commit t oid =
  match Store.get_exn t.rstore oid with
  | Store.Commit c -> (
      match Store.get_exn t.rstore c.Store.tree with
      | Store.Tree entries -> entries
      | Store.Blob _ | Store.Commit _ -> invalid_arg "corrupt commit: tree id is not a tree")
  | Store.Blob _ | Store.Tree _ -> invalid_arg "not a commit"

let head_tree t = match t.rhead with None -> [] | Some oid -> tree_of_commit t oid

(* Merge sorted tree entries with sorted changes; both lists are kept
   sorted by path so this is a linear merge — but the full O(n) walk
   per commit is deliberate: it is what makes throughput fall as the
   repository grows (Figure 13). *)
let apply_changes t entries changes =
  let changes =
    List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) changes
  in
  let rec merge entries changes acc =
    match entries, changes with
    | rest, [] -> List.rev_append acc rest
    | [], (path, content) :: more -> (
        match content with
        | Some data ->
            let oid = Store.put t.rstore (Store.Blob data) in
            merge [] more ((path, oid) :: acc)
        | None -> invalid_arg ("delete of missing path " ^ path))
    | (epath, eoid) :: erest, (cpath, content) :: crest ->
        let cmp = String.compare epath cpath in
        if cmp < 0 then merge erest changes ((epath, eoid) :: acc)
        else if cmp > 0 then
          match content with
          | Some data ->
              let oid = Store.put t.rstore (Store.Blob data) in
              merge entries crest ((cpath, oid) :: acc)
          | None -> invalid_arg ("delete of missing path " ^ cpath)
        else
          (* Same path: change replaces or deletes the entry. *)
          (match content with
          | Some data ->
              let oid = Store.put t.rstore (Store.Blob data) in
              merge erest crest ((cpath, oid) :: acc)
          | None -> merge erest crest acc)
  in
  merge entries changes []

(* Flat commits carry generation = 0 and changed = [] (untracked
   sentinels): recording them would let history queries shortcut the
   very walks whose cost this backend exists to reproduce. *)
let commit_flat t ~author ~message ~timestamp changes =
  let entries = apply_changes t (head_tree t) changes in
  let tree = Store.put t.rstore (Store.Tree entries) in
  let parents = match t.rhead with None -> [] | Some oid -> [ oid ] in
  Store.put t.rstore
    (Store.Commit
       { Store.tree; parents; author; message; timestamp; generation = 0; changed = [] })

let resolve_tree t = function
  | Some rev -> tree_of_commit t rev
  | None -> head_tree t

let diff_trees old_entries new_entries =
  (* Both sorted by path: linear scan for changed/added/removed. *)
  let rec scan old_entries new_entries acc =
    match old_entries, new_entries with
    | [], rest -> List.rev_append acc (List.map fst rest)
    | rest, [] -> List.rev_append acc (List.map fst rest)
    | (opath, ooid) :: orest, (npath, noid) :: nrest ->
        let cmp = String.compare opath npath in
        if cmp < 0 then scan orest new_entries (opath :: acc)
        else if cmp > 0 then scan old_entries nrest (npath :: acc)
        else if ooid = noid then scan orest nrest acc
        else scan orest nrest (opath :: acc)
  in
  scan old_entries new_entries []

let changed_paths_of_commit_flat t oid =
  match commit_info t oid with
  | None -> []
  | Some c ->
      let current = tree_of_commit t oid in
      let parent =
        match c.Store.parents with [] -> [] | p :: _ -> tree_of_commit t p
      in
      diff_trees parent current

(* ===================================================================
   Merkle backend: directory-sharded trees.  A tree node's entries are
   path components; an entry's oid names a Blob (file) or another Tree
   (subdirectory).  The same component may appear once as each, since
   the flat namespace allows "a" and "a/b" to coexist.  A commit
   re-hashes only the dirty spine (changed leaf + ancestor nodes);
   untouched subtrees are shared by oid, so byte cost is O(changed).
   =================================================================== *)

type kind = File | Dir

let kind_rank = function File -> 0 | Dir -> 1

let compare_entry (n1, k1, _) (n2, k2, _) =
  let c = String.compare n1 n2 in
  if c <> 0 then c else Int.compare (kind_rank k1) (kind_rank k2)

let node_entries store oid =
  match Store.get_exn store oid with
  | Store.Tree entries -> entries
  | Store.Blob _ | Store.Commit _ -> invalid_arg "corrupt merkle tree: oid is not a tree"

let entry_kind store oid =
  match Store.get_exn store oid with
  | Store.Blob _ -> File
  | Store.Tree _ -> Dir
  | Store.Commit _ -> invalid_arg "corrupt merkle tree: commit inside a tree"

let annotate store entries =
  List.map (fun (name, oid) -> name, entry_kind store oid, oid) entries

let root_of_commit t oid =
  match Store.get_exn t.rstore oid with
  | Store.Commit c -> c.Store.tree
  | Store.Blob _ | Store.Tree _ -> invalid_arg "not a commit"

type action = Set of Store.oid | Remove

(* Rebuild the dirty spine under one node.  [changes] pairs non-empty
   component lists with actions; returns the new node oid, or None if
   the node emptied out (the parent then drops its entry, so deleted
   directories don't linger as empty husks). *)
let rec update_node t old_oid changes =
  let entries =
    match old_oid with
    | None -> []
    | Some oid -> annotate t.rstore (node_entries t.rstore oid)
  in
  let leaves = Hashtbl.create 8 and subs = Hashtbl.create 8 in
  List.iter
    (fun (comps, act) ->
      match comps with
      | [] -> invalid_arg "Repo: empty path"
      | [ leaf ] -> Hashtbl.replace leaves leaf act
      | child :: rest -> (
          match Hashtbl.find_opt subs child with
          | Some group -> group := (rest, act) :: !group
          | None -> Hashtbl.add subs child (ref [ rest, act ])))
    changes;
  let kept =
    List.filter
      (fun (name, k, _) ->
        match k with
        | File -> not (Hashtbl.mem leaves name)
        | Dir -> not (Hashtbl.mem subs name))
      entries
  in
  let file_entries =
    Hashtbl.fold
      (fun name act acc ->
        match act with Set oid -> (name, File, oid) :: acc | Remove -> acc)
      leaves []
  in
  let dir_entries =
    Hashtbl.fold
      (fun name group acc ->
        let old_sub =
          List.find_map
            (fun (n, k, oid) -> if n = name && k = Dir then Some oid else None)
            entries
        in
        match update_node t old_sub !group with
        | Some oid -> (name, Dir, oid) :: acc
        | None -> acc)
      subs []
  in
  match List.sort compare_entry (file_entries @ dir_entries @ kept) with
  | [] -> None
  | merged ->
      Some (Store.put t.rstore (Store.Tree (List.map (fun (n, _, o) -> n, o) merged)))

(* Resolve a file by descending the spine: O(tree depth x fanout). *)
let rec find_in_node store oid comps =
  match comps with
  | [] -> None
  | [ leaf ] ->
      List.find_map
        (fun (n, o) ->
          if n = leaf then
            match Store.get_exn store o with
            | Store.Blob data -> Some data
            | Store.Tree _ | Store.Commit _ -> None
          else None)
        (node_entries store oid)
  | child :: rest ->
      List.find_map
        (fun (n, o) ->
          if n = child then
            match Store.get_exn store o with
            | Store.Tree _ -> find_in_node store o rest
            | Store.Blob _ | Store.Commit _ -> None
          else None)
        (node_entries store oid)

let rec collect_paths store prefix oid acc =
  List.fold_left
    (fun acc (name, o) ->
      match Store.get_exn store o with
      | Store.Blob _ -> (prefix ^ name) :: acc
      | Store.Tree _ -> collect_paths store (prefix ^ name ^ "/") o acc
      | Store.Commit _ -> acc)
    acc (node_entries store oid)

(* Paths under a string prefix: descend whole components, then filter
   the last (possibly partial) component — O(matching + depth x
   fanout), not O(repo). *)
let rec collect_prefixed store oid comps built acc =
  match comps with
  | [] -> acc
  | [ partial ] ->
      List.fold_left
        (fun acc (name, o) ->
          if has_prefix ~prefix:partial name then
            match Store.get_exn store o with
            | Store.Blob _ -> (built ^ name) :: acc
            | Store.Tree _ -> collect_paths store (built ^ name ^ "/") o acc
            | Store.Commit _ -> acc
          else acc)
        acc (node_entries store oid)
  | comp :: rest ->
      List.fold_left
        (fun acc (name, o) ->
          if name = comp then
            match Store.get_exn store o with
            | Store.Tree _ -> collect_prefixed store o rest (built ^ name ^ "/") acc
            | Store.Blob _ | Store.Commit _ -> acc
          else acc)
        acc (node_entries store oid)

(* Structural diff: recurse only into subtrees whose oids differ, so
   cost is O(changed paths x tree depth), not O(repo). *)
let rec diff_nodes store prefix old_oid new_oid acc =
  if old_oid = new_oid then acc
  else begin
    let load = function
      | None -> []
      | Some oid -> annotate store (node_entries store oid)
    in
    let all_under (name, k, oid) acc =
      match k with
      | File -> (prefix ^ name) :: acc
      | Dir -> collect_paths store (prefix ^ name ^ "/") oid acc
    in
    let rec merge olds news acc =
      match olds, news with
      | [], [] -> acc
      | o :: orest, [] -> merge orest [] (all_under o acc)
      | [], n :: nrest -> merge [] nrest (all_under n acc)
      | (o :: orest as oall), (n :: nrest as nall) ->
          let cmp = compare_entry o n in
          if cmp < 0 then merge orest nall (all_under o acc)
          else if cmp > 0 then merge oall nrest (all_under n acc)
          else
            let name, k, ooid = o and _, _, noid = n in
            if ooid = noid then merge orest nrest acc
            else (
              match k with
              | File -> merge orest nrest ((prefix ^ name) :: acc)
              | Dir ->
                  merge orest nrest
                    (diff_nodes store (prefix ^ name ^ "/") (Some ooid) (Some noid) acc))
    in
    merge (load old_oid) (load new_oid) acc
  end

let commit_merkle t ~author ~message ~timestamp changes =
  let changes =
    List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) changes
  in
  (* Effective actions: a rewrite whose blob oid matches head is a
     no-op (matching flat diff semantics, where an identical rewrite
     never shows up as a changed path). *)
  let actions =
    List.filter_map
      (fun (path, content) ->
        match content with
        | None ->
            if not (Hashtbl.mem t.head_index path) then
              invalid_arg ("delete of missing path " ^ path);
            Some (path, Remove)
        | Some data ->
            let boid = Store.put t.rstore (Store.Blob data) in
            (match Hashtbl.find_opt t.head_index path with
            | Some existing when String.equal existing boid -> None
            | Some _ | None -> Some (path, Set boid)))
      changes
  in
  let old_root =
    match t.rhead with None -> None | Some oid -> Some (root_of_commit t oid)
  in
  let new_root =
    match actions with
    | [] -> old_root
    | _ ->
        update_node t old_root
          (List.map (fun (path, act) -> String.split_on_char '/' path, act) actions)
  in
  let tree =
    match new_root with Some oid -> oid | None -> Store.put t.rstore (Store.Tree [])
  in
  let parents, generation =
    match t.rhead with
    | None -> [], 1
    | Some oid ->
        let gen =
          match commit_info t oid with Some c -> c.Store.generation | None -> 0
        in
        [ oid ], gen + 1
  in
  let changed = List.map fst actions in
  let coid =
    Store.put t.rstore
      (Store.Commit { Store.tree; parents; author; message; timestamp; generation; changed })
  in
  List.iter
    (fun (path, act) ->
      (match act with
      | Set boid -> Hashtbl.replace t.head_index path boid
      | Remove -> Hashtbl.remove t.head_index path);
      match Hashtbl.find_opt t.touches path with
      | Some group -> group := coid :: !group
      | None -> Hashtbl.add t.touches path (ref [ coid ]))
    actions;
  coid

(* ===================================================================
   Public API: dispatch on the backend.
   =================================================================== *)

let commit t ~author ~message ~timestamp changes =
  if changes = [] then invalid_arg "Repo.commit: empty change list";
  let oid =
    match t.rbackend with
    | Flat -> commit_flat t ~author ~message ~timestamp changes
    | Merkle -> commit_merkle t ~author ~message ~timestamp changes
  in
  t.rhead <- Some oid;
  t.ncommits <- t.ncommits + 1;
  (* Every landed commit pins a generation: the numbered root that
     makes whole-tree rollback an O(1) repoint (§generations). *)
  ignore (Store.land_generation t.rstore ~root:oid ~timestamp ~message);
  oid

let read_file ?rev t path =
  match t.rbackend with
  | Flat -> (
      let entries = resolve_tree t rev in
      match List.assoc_opt path entries with
      | Some oid -> (
          match Store.get_exn t.rstore oid with
          | Store.Blob data -> Some data
          | Store.Tree _ | Store.Commit _ -> None)
      | None -> None)
  | Merkle -> (
      match rev with
      | None -> (
          match Hashtbl.find_opt t.head_index path with
          | None -> None
          | Some boid -> (
              match Store.get_exn t.rstore boid with
              | Store.Blob data -> Some data
              | Store.Tree _ | Store.Commit _ -> None))
      | Some rev ->
          find_in_node t.rstore (root_of_commit t rev) (String.split_on_char '/' path))

let ls ?rev ?prefix t =
  match t.rbackend with
  | Flat ->
      let paths = List.map fst (resolve_tree t rev) in
      (match prefix with
      | None -> paths
      | Some prefix -> List.filter (has_prefix ~prefix) paths)
  | Merkle -> (
      match rev, prefix with
      | None, None ->
          List.sort String.compare
            (Hashtbl.fold (fun path _ acc -> path :: acc) t.head_index [])
      | rev, prefix ->
          let root =
            match rev, t.rhead with
            | Some rev, _ -> Some (root_of_commit t rev)
            | None, Some head -> Some (root_of_commit t head)
            | None, None -> None
          in
          (match root with
          | None -> []
          | Some root ->
              let collected =
                match prefix with
                | None -> collect_paths t.rstore "" root []
                | Some prefix ->
                    collect_prefixed t.rstore root (String.split_on_char '/' prefix) "" []
              in
              List.sort String.compare collected))

let file_count t =
  match t.rbackend with
  | Flat -> List.length (head_tree t)
  | Merkle -> Hashtbl.length t.head_index

let commit_count t = t.ncommits

let log ?limit t =
  let rec walk oid acc remaining =
    match oid, remaining with
    | None, _ -> List.rev acc
    | _, Some 0 -> List.rev acc
    | Some oid, _ -> (
        match commit_info t oid with
        | None -> List.rev acc
        | Some c ->
            let remaining = Option.map (fun n -> n - 1) remaining in
            let parent = match c.Store.parents with [] -> None | p :: _ -> Some p in
            walk parent ((oid, c) :: acc) remaining)
  in
  walk t.rhead [] limit

let changed_paths_of_commit t oid =
  match t.rbackend with
  | Flat -> changed_paths_of_commit_flat t oid
  | Merkle -> ( match commit_info t oid with None -> [] | Some c -> c.Store.changed)

let changed_since t ~base =
  match t.rhead with
  | None -> []
  | Some head_oid ->
      if base = Some head_oid then []
      else begin
        (* Merkle commits replay their recorded change lists —
           O(commits x changed); flat commits re-diff full trees per
           commit — O(commits x repo), the honest legacy cost. *)
        let paths_of oid c =
          match t.rbackend with
          | Merkle -> c.Store.changed
          | Flat -> changed_paths_of_commit_flat t oid
        in
        let seen = Hashtbl.create 16 in
        let rec walk oid =
          match oid with
          | None -> ()
          | Some oid when base = Some oid -> ()
          | Some oid -> (
              match commit_info t oid with
              | None -> ()
              | Some c ->
                  List.iter (fun path -> Hashtbl.replace seen path ()) (paths_of oid c);
                  walk (match c.Store.parents with [] -> None | p :: _ -> Some p))
        in
        walk (Some head_oid);
        List.sort String.compare (Hashtbl.fold (fun path () acc -> path :: acc) seen [])
      end

let changed_between t ~base ~head =
  match t.rbackend with
  | Flat ->
      let old_entries = match base with None -> [] | Some oid -> tree_of_commit t oid in
      diff_trees old_entries (tree_of_commit t head)
  | Merkle ->
      let old_root = Option.map (root_of_commit t) base in
      List.sort_uniq String.compare
        (diff_nodes t.rstore "" old_root (Some (root_of_commit t head)) [])

let conflicts t ~base ~paths =
  (* One hash set of touched paths, then a linear membership filter —
     O(touched + |paths|) instead of the old O(touched x |paths|). *)
  let touched = Hashtbl.create 16 in
  List.iter (fun path -> Hashtbl.replace touched path ()) (changed_since t ~base);
  List.filter (Hashtbl.mem touched) paths

let is_ancestor t candidate ~of_ =
  match t.rbackend with
  | Flat ->
      let rec walk oid =
        match oid with
        | None -> false
        | Some oid when oid = candidate -> true
        | Some oid -> (
            match commit_info t oid with
            | None -> false
            | Some c -> walk (match c.Store.parents with [] -> None | p :: _ -> Some p))
      in
      walk (Some of_)
  | Merkle -> (
      (* Generation compare first: an ancestor's generation is strictly
         smaller, so most negatives are O(1) and the walk is bounded by
         the generation gap. *)
      if String.equal candidate of_ then true
      else
        match commit_info t candidate, commit_info t of_ with
        | Some cc, Some oc ->
            if cc.Store.generation >= oc.Store.generation then false
            else
              let rec walk oid =
                if String.equal oid candidate then true
                else
                  match commit_info t oid with
                  | None -> false
                  | Some c ->
                      if c.Store.generation <= cc.Store.generation then false
                      else (
                        match c.Store.parents with [] -> false | p :: _ -> walk p)
              in
              walk of_
        | _, _ -> false)

let path_history t path =
  match t.rbackend with
  | Merkle -> (
      match Hashtbl.find_opt t.touches path with
      | None -> []
      | Some oids ->
          List.filter_map
            (fun oid -> Option.map (fun c -> oid, c) (commit_info t oid))
            !oids)
  | Flat ->
      (* Legacy scan: every commit's full-tree diff, O(history x repo). *)
      List.filter
        (fun (oid, _) -> List.mem path (changed_paths_of_commit_flat t oid))
        (log t)

(* ===================================================================
   Generations: rollback, GC, recovery.
   =================================================================== *)

(* Rebuild the Merkle head/touch indexes from scratch — O(files at
   head) + O(retained history), independent of total history length:
   what makes recovery and rollback cheap even on long histories. *)
let rebuild_indexes t =
  Hashtbl.reset t.head_index;
  Hashtbl.reset t.touches;
  match t.rbackend with
  | Flat -> ()
  | Merkle -> (
      (match t.rhead with
      | None -> ()
      | Some head ->
          let rec walk prefix oid =
            List.iter
              (fun (name, o) ->
                match Store.get_exn t.rstore o with
                | Store.Blob _ -> Hashtbl.replace t.head_index (prefix ^ name) o
                | Store.Tree _ -> walk (prefix ^ name ^ "/") o
                | Store.Commit _ -> ())
              (node_entries t.rstore oid)
          in
          walk "" (root_of_commit t head));
      (* Oldest first so consing leaves each group newest-first. *)
      List.iter
        (fun (oid, c) ->
          List.iter
            (fun path ->
              match Hashtbl.find_opt t.touches path with
              | Some group -> group := oid :: !group
              | None -> Hashtbl.add t.touches path (ref [ oid ]))
            c.Store.changed)
        (List.rev (log t)))

let rollback t ~generation ~timestamp =
  let gens = Store.generations t.rstore in
  match List.find_opt (fun g -> g.Store.gen_num = generation) gens with
  | None ->
      invalid_arg (Printf.sprintf "Repo.rollback: unknown generation %d" generation)
  | Some g ->
      (* O(1) at the store: repoint head and append one new pin — no
         object is copied or rewritten, whatever the history length. *)
      t.rhead <- Some g.Store.gen_root;
      let num =
        Store.land_generation t.rstore ~root:g.Store.gen_root ~timestamp
          ~message:(Printf.sprintf "rollback to generation %d" generation)
      in
      Store.sync t.rstore;
      t.ncommits <- List.length (log t);
      rebuild_indexes t;
      num

let gc t ~keep_last =
  let stats = Store.gc t.rstore ~keep_last in
  (* Head is pinned by the newest generation, so it always survives;
     swept commits simply vanish from log/touch walks (commit_info
     returns None and the walks stop). *)
  t.ncommits <- List.length (log t);
  stats

(* Is the whole commit -> tree closure under [root] present?  A pin
   can be durable while some of its objects were lost to a crash
   (torn data batch); such a generation is unusable. *)
let closure_complete store root =
  let seen = Hashtbl.create 256 in
  let rec walk oid =
    Hashtbl.mem seen oid
    ||
    match Store.get store oid with
    | None -> false
    | Some obj -> (
        Hashtbl.replace seen oid ();
        match obj with
        | Store.Blob _ -> true
        | Store.Tree entries -> List.for_all (fun (_, o) -> walk o) entries
        | Store.Commit c -> walk c.Store.tree)
  in
  walk root

let of_store ?backend ?(name = "configerator") store =
  let newest_first = List.rev (Store.generations store) in
  let rec choose dropped = function
    | [] -> None, dropped
    | g :: rest ->
        if closure_complete store g.Store.gen_root then Some g, dropped
        else choose (dropped + 1) rest
  in
  let chosen, dropped = choose 0 newest_first in
  let rhead = Option.map (fun g -> g.Store.gen_root) chosen in
  let rbackend =
    match backend, rhead with
    | Some b, _ -> b
    | None, None -> Merkle
    | None, Some oid -> (
        (* Flat commits carry the generation = 0 sentinel. *)
        match Store.get store oid with
        | Some (Store.Commit c) -> if c.Store.generation = 0 then Flat else Merkle
        | Some (Store.Blob _ | Store.Tree _) | None -> Merkle)
  in
  let t =
    {
      rname = name;
      rstore = store;
      rbackend;
      rhead;
      ncommits = 0;
      head_index = Hashtbl.create 256;
      touches = Hashtbl.create 256;
      rdropped = dropped;
    }
  in
  t.ncommits <- List.length (log t);
  rebuild_indexes t;
  t

let recovery_dropped t = t.rdropped
