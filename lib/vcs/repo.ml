type t = {
  rname : string;
  rstore : Store.t;
  mutable rhead : Store.oid option;
  mutable ncommits : int;
}

type change = string * string option

let create ?(name = "configerator") () =
  { rname = name; rstore = Store.create (); rhead = None; ncommits = 0 }

let name t = t.rname
let store t = t.rstore
let head t = t.rhead

let tree_of_commit t oid =
  match Store.get_exn t.rstore oid with
  | Store.Commit c -> (
      match Store.get_exn t.rstore c.Store.tree with
      | Store.Tree entries -> entries
      | Store.Blob _ | Store.Commit _ -> invalid_arg "corrupt commit: tree id is not a tree")
  | Store.Blob _ | Store.Tree _ -> invalid_arg "not a commit"

let head_tree t = match t.rhead with None -> [] | Some oid -> tree_of_commit t oid

(* Merge sorted tree entries with sorted changes; both lists are kept
   sorted by path so this is a linear merge — but the full O(n) walk
   per commit is deliberate: it is what makes throughput fall as the
   repository grows (Figure 13). *)
let apply_changes t entries changes =
  let changes =
    List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) changes
  in
  let rec merge entries changes acc =
    match entries, changes with
    | rest, [] -> List.rev_append acc rest
    | [], (path, content) :: more -> (
        match content with
        | Some data ->
            let oid = Store.put t.rstore (Store.Blob data) in
            merge [] more ((path, oid) :: acc)
        | None -> invalid_arg ("delete of missing path " ^ path))
    | (epath, eoid) :: erest, (cpath, content) :: crest ->
        let cmp = String.compare epath cpath in
        if cmp < 0 then merge erest changes ((epath, eoid) :: acc)
        else if cmp > 0 then
          match content with
          | Some data ->
              let oid = Store.put t.rstore (Store.Blob data) in
              merge entries crest ((cpath, oid) :: acc)
          | None -> invalid_arg ("delete of missing path " ^ cpath)
        else
          (* Same path: change replaces or deletes the entry. *)
          (match content with
          | Some data ->
              let oid = Store.put t.rstore (Store.Blob data) in
              merge erest crest ((cpath, oid) :: acc)
          | None -> merge erest crest acc)
  in
  merge entries changes []

let commit t ~author ~message ~timestamp changes =
  if changes = [] then invalid_arg "Repo.commit: empty change list";
  let entries = apply_changes t (head_tree t) changes in
  let tree = Store.put t.rstore (Store.Tree entries) in
  let parents = match t.rhead with None -> [] | Some oid -> [ oid ] in
  let oid =
    Store.put t.rstore (Store.Commit { Store.tree; parents; author; message; timestamp })
  in
  t.rhead <- Some oid;
  t.ncommits <- t.ncommits + 1;
  oid

let resolve_tree t = function
  | Some rev -> tree_of_commit t rev
  | None -> head_tree t

let read_file ?rev t path =
  let entries = match rev with Some _ -> resolve_tree t rev | None -> head_tree t in
  match List.assoc_opt path entries with
  | Some oid -> (
      match Store.get_exn t.rstore oid with
      | Store.Blob data -> Some data
      | Store.Tree _ | Store.Commit _ -> None)
  | None -> None

let ls ?rev t =
  let entries = match rev with Some _ -> resolve_tree t rev | None -> head_tree t in
  List.map fst entries

let file_count t = List.length (head_tree t)
let commit_count t = t.ncommits

let commit_info t oid =
  match Store.get t.rstore oid with
  | Some (Store.Commit c) -> Some c
  | Some (Store.Blob _ | Store.Tree _) | None -> None

let log ?limit t =
  let rec walk oid acc remaining =
    match oid, remaining with
    | None, _ -> List.rev acc
    | _, Some 0 -> List.rev acc
    | Some oid, _ -> (
        match commit_info t oid with
        | None -> List.rev acc
        | Some c ->
            let remaining = Option.map (fun n -> n - 1) remaining in
            let parent = match c.Store.parents with [] -> None | p :: _ -> Some p in
            walk parent ((oid, c) :: acc) remaining)
  in
  walk t.rhead [] limit

let diff_trees old_entries new_entries =
  (* Both sorted by path: linear scan for changed/added/removed. *)
  let rec scan old_entries new_entries acc =
    match old_entries, new_entries with
    | [], rest -> List.rev_append acc (List.map fst rest)
    | rest, [] -> List.rev_append acc (List.map fst rest)
    | (opath, ooid) :: orest, (npath, noid) :: nrest ->
        let cmp = String.compare opath npath in
        if cmp < 0 then scan orest new_entries (opath :: acc)
        else if cmp > 0 then scan old_entries nrest (npath :: acc)
        else if ooid = noid then scan orest nrest acc
        else scan orest nrest (opath :: acc)
  in
  scan old_entries new_entries []

let changed_paths_of_commit t oid =
  match commit_info t oid with
  | None -> []
  | Some c ->
      let current = tree_of_commit t oid in
      let parent =
        match c.Store.parents with [] -> [] | p :: _ -> tree_of_commit t p
      in
      diff_trees parent current

let changed_since t ~base =
  match t.rhead with
  | None -> []
  | Some head_oid ->
      if base = Some head_oid then []
      else begin
        let seen = Hashtbl.create 16 in
        let rec walk oid =
          match oid with
          | None -> ()
          | Some oid when base = Some oid -> ()
          | Some oid -> (
              match commit_info t oid with
              | None -> ()
              | Some c ->
                  List.iter
                    (fun path -> Hashtbl.replace seen path ())
                    (changed_paths_of_commit t oid);
                  walk (match c.Store.parents with [] -> None | p :: _ -> Some p))
        in
        walk (Some head_oid);
        List.sort String.compare (Hashtbl.fold (fun path () acc -> path :: acc) seen [])
      end

let changed_between t ~base ~head =
  let old_entries = match base with None -> [] | Some oid -> tree_of_commit t oid in
  diff_trees old_entries (tree_of_commit t head)

let conflicts t ~base ~paths =
  let touched = changed_since t ~base in
  List.filter (fun path -> List.mem path touched) paths

let is_ancestor t candidate ~of_ =
  let rec walk oid =
    match oid with
    | None -> false
    | Some oid when oid = candidate -> true
    | Some oid -> (
        match commit_info t oid with
        | None -> false
        | Some c -> walk (match c.Store.parents with [] -> None | p :: _ -> Some p))
  in
  walk (Some of_)
