type oid = string

type obj =
  | Blob of string
  | Tree of (string * oid) list
  | Commit of commit

and commit = {
  tree : oid;
  parents : oid list;
  author : string;
  message : string;
  timestamp : float;
  generation : int;
  changed : string list;
}

type backend =
  | Memory
  | Pack of {
      dir : string;
      sync_window : float;
      segment_max_bytes : int;
      compact_min_dead_fraction : float;
      clock : (unit -> float) option;
      domains : int;
    }

let pack_backend ?(sync_window = 0.05) ?(segment_max_bytes = 8 * 1024 * 1024)
    ?(compact_min_dead_fraction = 0.25) ?clock ?(domains = 1) dir =
  Pack
    { dir; sync_window; segment_max_bytes; compact_min_dead_fraction; clock; domains }

type gen = {
  gen_num : int;
  gen_root : oid;
  gen_time : float;
  gen_message : string;
}

type impl =
  | Mem of (oid, obj) Hashtbl.t
  | Pk of {
      pack : Cm_pack.Pack.t;
      cache : (oid, obj) Hashtbl.t;
          (* Deserialized view of the pack, filled on put and on first
             get; the on-disk record stays the source of truth for a
             fresh open. *)
    }

type t = {
  bknd : backend;
  impl : impl;
  mutable bytes : int;
  mutable puts : int;
  mutable dedup_hits : int;
  mutable dedup_bytes : int;
  (* Memory-backend generation log; the Pack backend keeps its own
     durable one. *)
  mutable mgens : gen list; (* newest first *)
  mutable mgen_count : int;
}

let create ?(backend = Memory) () =
  let impl =
    match backend with
    | Memory -> Mem (Hashtbl.create 1024)
    | Pack
        { dir; sync_window; segment_max_bytes; compact_min_dead_fraction; clock; domains }
      ->
        let pack =
          Cm_pack.Pack.create ~dir ~sync_window ~segment_max_bytes
            ~compact_min_dead_fraction ?clock ~domains ()
        in
        Pk { pack; cache = Hashtbl.create 1024 }
  in
  {
    bknd = backend;
    impl;
    bytes = 0;
    puts = 0;
    dedup_hits = 0;
    dedup_bytes = 0;
    mgens = [];
    mgen_count = 0;
  }

let backend t = t.bknd
let pack_handle t = match t.impl with Mem _ -> None | Pk { pack; _ } -> Some pack

let serialize = function
  | Blob data -> "blob\000" ^ data
  | Tree entries ->
      let buf = Buffer.create 256 in
      Buffer.add_string buf "tree\000";
      List.iter
        (fun (path, oid) ->
          Buffer.add_string buf path;
          Buffer.add_char buf '\000';
          Buffer.add_string buf oid;
          Buffer.add_char buf '\n')
        entries;
      Buffer.contents buf
  | Commit { tree; parents; author; message; timestamp; generation; changed } ->
      Printf.sprintf "commit\000%s\000%s\000%s\000%s\000%.6f\000%d\000%s" tree
        (String.concat "," parents) author message timestamp generation
        (String.concat "\001" changed)

let deserialize s =
  match String.index_opt s '\000' with
  | None -> None
  | Some i -> (
      let tag = String.sub s 0 i in
      let body = String.sub s (i + 1) (String.length s - i - 1) in
      match tag with
      | "blob" -> Some (Blob body)
      | "tree" ->
          let lines = String.split_on_char '\n' body in
          let rec entries acc = function
            | [] | [ "" ] -> Some (Tree (List.rev acc))
            | line :: rest -> (
                match String.index_opt line '\000' with
                | None -> None
                | Some j ->
                    entries
                      (( String.sub line 0 j,
                         String.sub line (j + 1) (String.length line - j - 1) )
                      :: acc)
                      rest)
          in
          entries [] lines
      | "commit" -> (
          (* tree, parents, author, message, timestamp, generation,
             changed — the message may itself contain NULs, so rejoin
             everything between the three leading and three trailing
             fields. *)
          let parts = Array.of_list (String.split_on_char '\000' body) in
          let n = Array.length parts in
          if n < 6 then None
          else
            let message =
              String.concat "\000" (Array.to_list (Array.sub parts 3 (n - 6)))
            in
            match
              (float_of_string_opt parts.(n - 3), int_of_string_opt parts.(n - 2))
            with
            | Some timestamp, Some generation ->
                let parents =
                  if parts.(1) = "" then []
                  else String.split_on_char ',' parts.(1)
                in
                let changed =
                  if parts.(n - 1) = "" then []
                  else String.split_on_char '\001' parts.(n - 1)
                in
                Some
                  (Commit
                     {
                       tree = parts.(0);
                       parents;
                       author = parts.(2);
                       message;
                       timestamp;
                       generation;
                       changed;
                     })
            | _ -> None)
      | _ -> None)

let put t obj =
  let serialized = serialize obj in
  let oid = Digest.to_hex (Digest.string serialized) in
  t.puts <- t.puts + 1;
  let fresh =
    match t.impl with
    | Mem objects ->
        if Hashtbl.mem objects oid then false
        else begin
          Hashtbl.replace objects oid obj;
          true
        end
    | Pk { pack; cache } ->
        let fresh = Cm_pack.Pack.put pack ~oid ~data:serialized in
        if fresh then Hashtbl.replace cache oid obj;
        fresh
  in
  if fresh then t.bytes <- t.bytes + String.length serialized
  else begin
    t.dedup_hits <- t.dedup_hits + 1;
    t.dedup_bytes <- t.dedup_bytes + String.length serialized
  end;
  oid

let get t oid =
  match t.impl with
  | Mem objects -> Hashtbl.find_opt objects oid
  | Pk { pack; cache } -> (
      match Hashtbl.find_opt cache oid with
      | Some obj -> Some obj
      | None -> (
          match Cm_pack.Pack.find pack oid with
          | None -> None
          | Some data -> (
              match deserialize data with
              | Some obj ->
                  Hashtbl.replace cache oid obj;
                  Some obj
              | None -> None)))

let get_exn t oid =
  match get t oid with
  | Some obj -> obj
  | None -> invalid_arg ("Store.get_exn: unknown object " ^ oid)

let mem t oid =
  match t.impl with
  | Mem objects -> Hashtbl.mem objects oid
  | Pk { pack; _ } -> Cm_pack.Pack.mem pack oid

let object_count t =
  match t.impl with
  | Mem objects -> Hashtbl.length objects
  | Pk { pack; _ } -> Cm_pack.Pack.object_count pack

let oids t =
  match t.impl with
  | Mem objects -> Hashtbl.fold (fun oid _ acc -> oid :: acc) objects []
  | Pk { pack; _ } -> Cm_pack.Pack.oids pack

(* --- generations ------------------------------------------------------- *)

let land_generation t ~root ~timestamp ~message =
  match t.impl with
  | Mem _ ->
      let num = t.mgen_count + 1 in
      t.mgens <-
        { gen_num = num; gen_root = root; gen_time = timestamp; gen_message = message }
        :: t.mgens;
      t.mgen_count <- num;
      num
  | Pk { pack; _ } -> Cm_pack.Pack.land_generation pack ~root ~timestamp ~message

let of_pack_gen (g : Cm_pack.Pack.gen) =
  {
    gen_num = g.Cm_pack.Pack.g_num;
    gen_root = g.Cm_pack.Pack.g_root;
    gen_time = g.Cm_pack.Pack.g_time;
    gen_message = g.Cm_pack.Pack.g_message;
  }

let to_pack_gen g =
  {
    Cm_pack.Pack.g_num = g.gen_num;
    g_root = g.gen_root;
    g_time = g.gen_time;
    g_message = g.gen_message;
  }

let generations t =
  match t.impl with
  | Mem _ -> List.rev t.mgens
  | Pk { pack; _ } -> List.map of_pack_gen (Cm_pack.Pack.generations pack)

let last_generation t =
  match t.impl with
  | Mem _ -> t.mgen_count
  | Pk { pack; _ } -> Cm_pack.Pack.last_generation pack

let durable_generation t =
  match t.impl with
  | Mem _ -> t.mgen_count
  | Pk { pack; _ } -> Cm_pack.Pack.durable_generation pack

let sync t =
  match t.impl with Mem _ -> () | Pk { pack; _ } -> Cm_pack.Pack.sync pack

let close t =
  match t.impl with Mem _ -> () | Pk { pack; _ } -> Cm_pack.Pack.close pack

(* --- garbage collection ------------------------------------------------- *)

type gc_stats = {
  gc_live : int;
  gc_swept : int;
  gc_swept_bytes : int;
  gc_dropped_generations : int;
}

(* Mark the commit -> tree closure of each root.  Parents are
   deliberately not followed: every commit pins a generation, so the
   kept generations *are* the retained history. *)
let mark t roots =
  let marked = Hashtbl.create 1024 in
  let rec walk oid =
    if not (Hashtbl.mem marked oid) then
      match get t oid with
      | None -> ()
      | Some obj -> (
          Hashtbl.replace marked oid ();
          match obj with
          | Blob _ -> ()
          | Tree entries -> List.iter (fun (_, o) -> walk o) entries
          | Commit c -> walk c.tree)
  in
  List.iter walk roots;
  marked

let gc t ~keep_last =
  if keep_last < 1 then invalid_arg "Store.gc: keep_last must be >= 1";
  let gens = generations t in
  let drop = max 0 (List.length gens - keep_last) in
  let kept = List.filteri (fun i _ -> i >= drop) gens in
  let marked = mark t (List.map (fun g -> g.gen_root) kept) in
  match t.impl with
  | Mem objects ->
      let dead =
        Hashtbl.fold
          (fun oid obj acc ->
            if Hashtbl.mem marked oid then acc else (oid, obj) :: acc)
          objects []
      in
      let swept_bytes =
        List.fold_left
          (fun acc (oid, obj) ->
            Hashtbl.remove objects oid;
            acc + String.length (serialize obj))
          0 dead
      in
      t.bytes <- t.bytes - swept_bytes;
      t.mgens <- List.rev kept;
      {
        gc_live = Hashtbl.length objects;
        gc_swept = List.length dead;
        gc_swept_bytes = swept_bytes;
        gc_dropped_generations = drop;
      }
  | Pk { pack; cache } ->
      let stats =
        Cm_pack.Pack.gc pack
          ~live:(Hashtbl.mem marked)
          ~keep_gens:(List.map to_pack_gen kept)
      in
      let dead_cached =
        Hashtbl.fold
          (fun oid _ acc -> if Hashtbl.mem marked oid then acc else oid :: acc)
          cache []
      in
      List.iter (Hashtbl.remove cache) dead_cached;
      t.bytes <- t.bytes - stats.Cm_pack.Pack.gc_swept_data_bytes;
      {
        gc_live = stats.Cm_pack.Pack.gc_live_objects;
        gc_swept = stats.Cm_pack.Pack.gc_swept_objects;
        gc_swept_bytes = stats.Cm_pack.Pack.gc_swept_data_bytes;
        gc_dropped_generations = stats.Cm_pack.Pack.gc_generations_dropped;
      }

(* --- counters ----------------------------------------------------------- *)

let total_bytes t =
  match t.impl with
  | Mem _ -> t.bytes
  | Pk { pack; _ } -> Cm_pack.Pack.data_bytes pack

let put_count t = t.puts
let dedup_hits t = t.dedup_hits
let dedup_bytes t = t.dedup_bytes
