type oid = string

type obj =
  | Blob of string
  | Tree of (string * oid) list
  | Commit of commit

and commit = {
  tree : oid;
  parents : oid list;
  author : string;
  message : string;
  timestamp : float;
  generation : int;
  changed : string list;
}

type t = {
  objects : (oid, obj) Hashtbl.t;
  mutable bytes : int;
  mutable puts : int;
  mutable dedup_hits : int;
  mutable dedup_bytes : int;
}

let create () =
  { objects = Hashtbl.create 1024; bytes = 0; puts = 0; dedup_hits = 0; dedup_bytes = 0 }

let serialize = function
  | Blob data -> "blob\000" ^ data
  | Tree entries ->
      let buf = Buffer.create 256 in
      Buffer.add_string buf "tree\000";
      List.iter
        (fun (path, oid) ->
          Buffer.add_string buf path;
          Buffer.add_char buf '\000';
          Buffer.add_string buf oid;
          Buffer.add_char buf '\n')
        entries;
      Buffer.contents buf
  | Commit { tree; parents; author; message; timestamp; generation; changed } ->
      Printf.sprintf "commit\000%s\000%s\000%s\000%s\000%.6f\000%d\000%s" tree
        (String.concat "," parents) author message timestamp generation
        (String.concat "\001" changed)

let put t obj =
  let serialized = serialize obj in
  let oid = Digest.to_hex (Digest.string serialized) in
  t.puts <- t.puts + 1;
  if Hashtbl.mem t.objects oid then begin
    t.dedup_hits <- t.dedup_hits + 1;
    t.dedup_bytes <- t.dedup_bytes + String.length serialized
  end
  else begin
    Hashtbl.replace t.objects oid obj;
    t.bytes <- t.bytes + String.length serialized
  end;
  oid

let get t oid = Hashtbl.find_opt t.objects oid

let get_exn t oid =
  match get t oid with
  | Some obj -> obj
  | None -> invalid_arg ("Store.get_exn: unknown object " ^ oid)

let mem t oid = Hashtbl.mem t.objects oid
let object_count t = Hashtbl.length t.objects
let total_bytes t = t.bytes
let put_count t = t.puts
let dedup_hits t = t.dedup_hits
let dedup_bytes t = t.dedup_bytes
