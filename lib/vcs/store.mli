(** Content-addressable object store (the ".git/objects" of our git
    substitute).  Objects are addressed by the hex digest of their
    serialized form; storing the same content twice is free — and
    counted, so structural sharing between revisions is observable
    ({!dedup_hits}/{!dedup_bytes}, surfaced by `configerator repo
    stats`). *)

type oid = string
(** Hex digest. *)

type obj =
  | Blob of string
  | Tree of (string * oid) list
      (** sorted [name -> oid] listing.  The flat backend stores full
          paths mapping to blob oids (one wide tree); the Merkle
          backend stores path {e components}, where an entry's oid may
          name a [Blob] (a file) or another [Tree] (a subdirectory) —
          the same component may appear once as each when a path is
          both a file and a directory prefix. *)
  | Commit of commit

and commit = {
  tree : oid;
  parents : oid list;
  author : string;
  message : string;
  timestamp : float;
  generation : int;
      (** 1 + the parent's generation (root commit = 1), so
          ancestry on a linear history is a single integer compare.
          [0] means "untracked": the flat backend deliberately leaves
          it unset to keep its history walks honest (Figure 13). *)
  changed : string list;
      (** Paths whose content this commit actually changed relative to
          its first parent, sorted — the per-commit change record that
          makes history scans O(changed).  [[]] for flat-backend
          commits (untracked) and for no-op commits. *)
}

type t

val create : unit -> t

val put : t -> obj -> oid
(** Serializes, hashes, stores; returns the id.  Idempotent. *)

val get : t -> oid -> obj option
val get_exn : t -> oid -> obj

val mem : t -> oid -> bool
val object_count : t -> int

val total_bytes : t -> int
(** Sum of serialized sizes of all stored objects (each counted once,
    however often it was put). *)

val put_count : t -> int
(** Total {!put} calls, including deduplicated ones. *)

val dedup_hits : t -> int
(** Puts that found their object already present. *)

val dedup_bytes : t -> int
(** Serialized bytes those deduplicated puts did {e not} add — the
    byte cost structural sharing avoided. *)
