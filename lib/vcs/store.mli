(** Content-addressable object store (the ".git/objects" of our git
    substitute).  Objects are addressed by the hex digest of their
    serialized form; storing the same content twice is free — and
    counted, so structural sharing between revisions is observable
    ({!dedup_hits}/{!dedup_bytes}, surfaced by `configerator repo
    stats`).

    Two backends sit behind one interface: [Memory] (the default —
    a hashtable, nothing survives the process) and [Pack] (durable
    append-only pack segments via {!Cm_pack.Pack}, with batched group
    fsync, crash recovery by scan, and a generation log).  Counter
    semantics ({!total_bytes}, {!put_count}, {!dedup_hits},
    {!dedup_bytes}) are backend-independent: the same sequence of puts
    yields the same numbers on either backend.

    {2 Generations}

    Every landed commit pins its oid as a {e generation} — a numbered
    root in an append-only log.  Rollback is then O(1): repoint at an
    old root and pin that as a new generation; no object moves.  On
    the [Memory] backend the log is in-memory (same semantics, used
    for differential testing); on [Pack] it is durable and replayed
    on open. *)

type oid = string
(** Hex digest. *)

type obj =
  | Blob of string
  | Tree of (string * oid) list
      (** sorted [name -> oid] listing.  The flat backend stores full
          paths mapping to blob oids (one wide tree); the Merkle
          backend stores path {e components}, where an entry's oid may
          name a [Blob] (a file) or another [Tree] (a subdirectory) —
          the same component may appear once as each when a path is
          both a file and a directory prefix.  Paths must not contain
          NUL or newline bytes (the serialized form uses them as
          delimiters). *)
  | Commit of commit

and commit = {
  tree : oid;
  parents : oid list;
  author : string;
  message : string;
  timestamp : float;
  generation : int;
      (** 1 + the parent's generation (root commit = 1), so
          ancestry on a linear history is a single integer compare.
          [0] means "untracked": the flat backend deliberately leaves
          it unset to keep its history walks honest (Figure 13). *)
  changed : string list;
      (** Paths whose content this commit actually changed relative to
          its first parent, sorted — the per-commit change record that
          makes history scans O(changed).  [[]] for flat-backend
          commits (untracked) and for no-op commits. *)
}

type backend =
  | Memory
  | Pack of {
      dir : string;
      sync_window : float;
      segment_max_bytes : int;
      compact_min_dead_fraction : float;
      clock : (unit -> float) option;
      domains : int;
    }

val pack_backend :
  ?sync_window:float ->
  ?segment_max_bytes:int ->
  ?compact_min_dead_fraction:float ->
  ?clock:(unit -> float) ->
  ?domains:int ->
  string ->
  backend
(** [pack_backend dir] with the {!Cm_pack.Pack.create} defaults
    (50 ms sync window, 8 MiB segments, 0.25 compaction threshold,
    single-domain recovery scan; [domains] fans the open-time segment
    scan out without changing the recovered state). *)

type t

val create : ?backend:backend -> unit -> t
(** Default [Memory].  With [Pack], opens (or initialises) the pack
    directory — on an existing directory this is crash recovery: the
    segment scan rebuilds the object index and the generation log is
    replayed (see {!pack_handle} and {!Cm_pack.Pack.recovery}). *)

val backend : t -> backend

val pack_handle : t -> Cm_pack.Pack.t option
(** The underlying pack store, for backend-specific statistics
    (segments, file/dead bytes, fsync batches, recovery report) and
    crash modeling.  [None] on [Memory]. *)

val serialize : obj -> string
val deserialize : string -> obj option
(** Inverse of {!serialize}.  Total: returns [None] on malformed
    input (used when reading back from a pack). *)

val put : t -> obj -> oid
(** Serializes, hashes, stores; returns the id.  Idempotent. *)

val get : t -> oid -> obj option
val get_exn : t -> oid -> obj

val mem : t -> oid -> bool
val object_count : t -> int

val oids : t -> oid list
(** All live object ids, unordered. *)

(** {1 Generations} *)

type gen = {
  gen_num : int;  (** sequential from 1 *)
  gen_root : oid;
  gen_time : float;
  gen_message : string;
}

val land_generation : t -> root:oid -> timestamp:float -> message:string -> int
(** Pins [root] as the next generation; returns its number. *)

val generations : t -> gen list
(** Oldest first. *)

val last_generation : t -> int
(** 0 before any pin. *)

val durable_generation : t -> int
(** Newest generation guaranteed to survive [kill -9].  Equals
    {!last_generation} on [Memory] (nothing survives anyway) and on
    [Pack] after {!sync}. *)

val sync : t -> unit
(** Force the group-fsync batch out now.  No-op on [Memory]. *)

val close : t -> unit
(** Graceful shutdown ({!sync} + close descriptors).  No-op on
    [Memory]. *)

(** {1 Garbage collection} *)

type gc_stats = {
  gc_live : int;  (** objects surviving *)
  gc_swept : int;  (** objects removed *)
  gc_swept_bytes : int;
      (** serialized bytes removed — backend-independent: identical
          for the same sweep on [Memory] and [Pack] *)
  gc_dropped_generations : int;
}

val gc : t -> keep_last:int -> gc_stats
(** Mark-and-sweep: keeps the newest [keep_last] generations, marks
    the commit → tree closure of each kept root (parents are {e not}
    followed — retained history is exactly the kept generations), and
    sweeps everything else.  On [Pack] this also compacts segments
    past the dead-fraction threshold and rewrites the generation log
    (see {!Cm_pack.Pack.gc}). *)

(** {1 Counters} *)

val total_bytes : t -> int
(** Sum of serialized sizes of all stored objects (each counted once,
    however often it was put). *)

val put_count : t -> int
(** Total {!put} calls, including deduplicated ones. *)

val dedup_hits : t -> int
(** Puts that found their object already present. *)

val dedup_bytes : t -> int
(** Serialized bytes those deduplicated puts did {e not} add — the
    byte cost structural sharing avoided. *)
