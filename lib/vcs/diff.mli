(** Line-based diff, in the style of Unix [diff].

    The paper's Table 2 counts config changes in these units: adding
    or deleting a line is one line change, modifying a line is two
    (one delete plus one add).  {!stats} computes exactly that. *)

type edit =
  | Keep of string
  | Del of string
  | Add of string

val max_exact_cells : int
(** LCS table budget.  When the lines left after common prefix/suffix
    stripping would need more DP cells than this, {!diff} falls back
    to replacing the whole differing middle (delete-all + add-all), so
    a pathological pair of large blobs can't stall the landing strip.
    The script stays valid for {!apply}; it just isn't minimal, and
    {!line_changes} correspondingly over-counts for such pairs. *)

val diff : string -> string -> edit list
(** [diff old_text new_text] computes a minimal line edit script
    (longest-common-subsequence based) — exact below
    {!max_exact_cells}, whole-middle replace above it.  Inputs are
    split on newlines. *)

val stats : edit list -> int * int
(** [(added, deleted)] line counts. *)

val line_changes : string -> string -> int
(** [added + deleted]: the paper's "number of line changes". *)

val apply : string -> edit list -> string option
(** Replays an edit script against the old text; [None] when the
    script does not match (the [Keep]/[Del] lines disagree). *)

val pp : Format.formatter -> edit list -> unit
(** Unified-ish rendering: prefix ' ', '-', '+'. *)
