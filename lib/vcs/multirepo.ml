type t = { parts : (string * Repo.t) list }
(** Sorted by descending prefix length so the first match is the
    longest. *)

let create ?backend ?store ~partitions () =
  let named prefix =
    let store = match store with None -> None | Some f -> Some (f prefix) in
    Repo.create ?backend ?store ~name:(if prefix = "" then "<root>" else prefix) ()
  in
  let parts = List.map (fun prefix -> prefix, named prefix) partitions in
  let parts = (("", named "") :: parts) in
  let parts =
    List.sort (fun (a, _) (b, _) -> Int.compare (String.length b) (String.length a)) parts
  in
  { parts }

let partitions t = t.parts

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let route t path =
  let rec find = function
    | [] -> assert false (* "" always matches *)
    | (prefix, repo) :: rest -> if starts_with ~prefix path then repo else find rest
  in
  find t.parts

let repo_of_prefix t prefix = List.assoc_opt prefix t.parts

let commit t ~author ~message ~timestamp changes =
  let by_repo = Hashtbl.create 4 in
  let order = ref [] in
  List.iter
    (fun ((path, _) as change) ->
      let prefix, _ =
        List.find (fun (prefix, _) -> starts_with ~prefix path) t.parts
      in
      (match Hashtbl.find_opt by_repo prefix with
      | Some acc -> Hashtbl.replace by_repo prefix (change :: acc)
      | None ->
          Hashtbl.replace by_repo prefix [ change ];
          order := prefix :: !order))
    changes;
  List.rev_map
    (fun prefix ->
      let repo = List.assoc prefix t.parts in
      let repo_changes = List.rev (Hashtbl.find by_repo prefix) in
      prefix, Repo.commit repo ~author ~message ~timestamp repo_changes)
    !order

let read_file t path = Repo.read_file (route t path) path
let file_count t = List.fold_left (fun acc (_, repo) -> acc + Repo.file_count repo) 0 t.parts
