(** Partitioned global namespace over multiple repositories (§3.6).

    Files under different path prefixes (e.g. "/feed", "/tao") live in
    different repositories that accept commits independently; this is
    Configerator's remedy for the single-repository commit-throughput
    wall.  A change set spanning several partitions is split into one
    commit per repository. *)

type t

val create :
  ?backend:Repo.backend ->
  ?store:(string -> Store.backend) ->
  partitions:string list ->
  unit ->
  t
(** [partitions] are path prefixes, e.g. [\["/feed"; "/tao"\]].  Paths
    matching no prefix go to the catch-all root partition "".
    The longest matching prefix wins.  [backend] (default [Merkle])
    applies to every partition repository.  [store] maps each prefix
    (including the catch-all "") to its storage backend — partitions
    are independent repositories, so each gets its own store (e.g. its
    own pack directory); default [Store.Memory] everywhere. *)

val partitions : t -> (string * Repo.t) list
(** [(prefix, repo)] pairs, catch-all included. *)

val route : t -> string -> Repo.t
(** Repository owning a path. *)

val repo_of_prefix : t -> string -> Repo.t option

val commit :
  t ->
  author:string ->
  message:string ->
  timestamp:float ->
  Repo.change list ->
  (string * Store.oid) list
(** Splits the changes by partition and commits to each affected
    repository; returns [(prefix, commit id)] per repository touched.
    Matches the paper: "the code is the same regardless of whether
    those configs are in the same repository or not". *)

val read_file : t -> string -> string option
val file_count : t -> int
(** Total across partitions. *)
