(** A version-controlled repository with linear history.

    Configerator serializes all commits through the landing strip
    (§3.6), so the master history is a straight line; this module
    models exactly that — under two interchangeable storage backends:

    - {b [Merkle]} (the default): directory-sharded Merkle trees plus
      per-repo indexes.  A commit re-hashes only the dirty spine
      (changed leaf nodes and their ancestors), so commit cost is
      O(changed paths x tree depth); unchanged subtrees are shared by
      oid, so byte cost is O(changed).  Head reads go through a
      path->oid hash index (O(1)); commits carry generation numbers
      and changed-path records, so ancestry checks are a generation
      compare plus a bounded walk and history scans replay change
      records instead of re-diffing trees.
    - {b [Flat]}: the original single wide tree.  Committing rebuilds
      and re-hashes the whole listing and history scans re-diff full
      trees, so operations genuinely slow down as the repository grows
      — the degradation the paper measures in Figure 13.  It is kept
      (not just for tests) so that curve, and the multi-repo remedy's
      crossover, remain reproducible; `bench vcs` sweeps both.

    Both backends are observationally equivalent on
    [read_file]/[ls]/[changed_*]/[log] (a QCheck property holds them
    to it); only cost and object layout differ. *)

type t

type backend = Flat | Merkle

val backend_name : backend -> string
val backend_of_string : string -> backend option

val create : ?backend:backend -> ?store:Store.backend -> ?name:string -> unit -> t
(** [backend] defaults to [Merkle]; [store] to [Store.Memory] (pass
    {!Store.pack_backend} for a durable repository). *)

val of_store : ?backend:backend -> ?name:string -> Store.t -> t
(** Reopens a repository from a recovered store (crash recovery): head
    becomes the newest generation whose commit -> tree closure is
    fully present — a pin whose data batch was lost to the crash is
    skipped (see {!recovery_dropped}) — and the Merkle indexes are
    rebuilt in O(files at head) + O(retained history), independent of
    total history length.  [backend] is inferred from the head
    commit's generation sentinel (0 = [Flat]) unless given. *)

val recovery_dropped : t -> int
(** Generations skipped as incomplete by {!of_store} (0 normally). *)

val name : t -> string
val store : t -> Store.t
val backend : t -> backend

val head : t -> Store.oid option
(** [None] before the first commit. *)

type change = string * string option
(** [(path, Some content)] writes a file; [(path, None)] deletes it. *)

val commit :
  t -> author:string -> message:string -> timestamp:float -> change list -> Store.oid
(** Applies changes on top of head; returns the new commit id.
    @raise Invalid_argument on an empty change list or a delete of a
    missing path. *)

val read_file : ?rev:Store.oid -> t -> string -> string option
(** O(1) at head under the Merkle backend (hash index); O(tree depth x
    fanout) at a historical revision. *)

val ls : ?rev:Store.oid -> ?prefix:string -> t -> string list
(** All paths at a revision (default head), sorted; with [prefix],
    only paths starting with it.  Under the Merkle backend a prefix
    listing descends the spine and touches only matching subtrees —
    O(matching paths + depth), not O(repo). *)

val file_count : t -> int
val commit_count : t -> int

val log : ?limit:int -> t -> (Store.oid * Store.commit) list
(** Newest first. *)

val commit_info : t -> Store.oid -> Store.commit option

val changed_paths_of_commit : t -> Store.oid -> string list
(** Paths the commit touched relative to its first parent.  Merkle:
    the commit's recorded change list, O(changed); flat: recomputed by
    a full-tree diff. *)

val path_history : t -> string -> (Store.oid * Store.commit) list
(** Commits that changed [path], newest first.  Merkle: a per-path
    touch index, O(touches of path); flat: a full history scan. *)

val changed_since : t -> base:Store.oid option -> string list
(** Union of paths touched by commits after [base] up to head.
    [base = None] means "everything at head". *)

val changed_between : t -> base:Store.oid option -> head:Store.oid -> string list
(** Content-level diff of the two revisions' trees: paths whose blob
    id differs between [base] and [head] (plus additions/removals),
    sorted.  Unlike {!changed_since}, a path rewritten and then
    reverted between the endpoints does {e not} appear — the tailer
    uses this to suppress no-op distribution writes.  Merkle trees
    recurse only into subtrees whose oids differ. *)

val conflicts : t -> base:Store.oid option -> paths:string list -> string list
(** Of [paths], those also modified between [base] and head — the
    landing strip's true-conflict test.  O(touched + |paths|). *)

val is_ancestor : t -> Store.oid -> of_:Store.oid -> bool
(** Merkle: O(1) generation compare for most negatives, then a walk
    bounded by the generation gap; flat: a linear history walk. *)

(** {1 Generations}

    Every landed commit pins its oid as a numbered generation in the
    store (see {!Store.generations}), so the generation log is a
    queryable linear history of landed states — and rollback is O(1)
    at the store however long the history is. *)

val rollback : t -> generation:int -> timestamp:float -> int
(** Atomically repoints head at the root pinned by [generation] and
    pins that root as a {e new} generation (so the rollback itself is
    in the log and is itself rollback-able); returns the new
    generation number.  O(1) at the store — one pin record appended,
    no data moved; the Merkle index rebuild is O(files at head).
    @raise Invalid_argument on an unknown generation number. *)

val gc : t -> keep_last:int -> Store.gc_stats
(** {!Store.gc}: keep the newest [keep_last] generations, sweep
    everything unreachable from their roots.  Head always survives
    (it is pinned by the newest generation). *)
