(** A version-controlled repository with linear history.

    Configerator serializes all commits through the landing strip
    (§3.6), so the master history is a straight line; this module
    models exactly that.  Costs are real: committing rebuilds and
    rehashes the flat tree, so operations genuinely slow down as the
    repository grows — the effect measured in the paper's Figure 13. *)

type t

val create : ?name:string -> unit -> t
val name : t -> string
val store : t -> Store.t

val head : t -> Store.oid option
(** [None] before the first commit. *)

type change = string * string option
(** [(path, Some content)] writes a file; [(path, None)] deletes it. *)

val commit :
  t -> author:string -> message:string -> timestamp:float -> change list -> Store.oid
(** Applies changes on top of head; returns the new commit id.
    @raise Invalid_argument on an empty change list or a delete of a
    missing path. *)

val read_file : ?rev:Store.oid -> t -> string -> string option
val ls : ?rev:Store.oid -> t -> string list
(** All paths at a revision (default head), sorted. *)

val file_count : t -> int
val commit_count : t -> int

val log : ?limit:int -> t -> (Store.oid * Store.commit) list
(** Newest first. *)

val commit_info : t -> Store.oid -> Store.commit option

val changed_paths_of_commit : t -> Store.oid -> string list
(** Paths the commit touched relative to its first parent. *)

val changed_since : t -> base:Store.oid option -> string list
(** Union of paths touched by commits after [base] up to head.
    [base = None] means "everything at head". *)

val changed_between : t -> base:Store.oid option -> head:Store.oid -> string list
(** Content-level diff of the two revisions' trees: paths whose blob
    id differs between [base] and [head] (plus additions/removals),
    sorted.  Unlike {!changed_since}, a path rewritten and then
    reverted between the endpoints does {e not} appear — the tailer
    uses this to suppress no-op distribution writes. *)

val conflicts : t -> base:Store.oid option -> paths:string list -> string list
(** Of [paths], those also modified between [base] and head — the
    landing strip's true-conflict test. *)

val is_ancestor : t -> Store.oid -> of_:Store.oid -> bool
