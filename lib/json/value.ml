type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Assoc of (string * t) list

let obj fields = Assoc fields

let member key = function
  | Assoc fields -> List.assoc_opt key fields
  | Null | Bool _ | Int _ | Float _ | String _ | List _ -> None

let member_exn key json =
  match member key json with Some v -> v | None -> raise Not_found

let rec path keys json =
  match keys with
  | [] -> Some json
  | key :: rest -> (
      match member key json with
      | Some v -> path rest v
      | None -> None)

let index i = function
  | List items -> List.nth_opt items i
  | Null | Bool _ | Int _ | Float _ | String _ | Assoc _ -> None

let to_bool = function Bool b -> Some b | _ -> None
let to_int = function Int n -> Some n | _ -> None

let to_float = function
  | Float f -> Some f
  | Int n -> Some (float_of_int n)
  | _ -> None

let to_string = function String s -> Some s | _ -> None
let to_list = function List items -> Some items | _ -> None
let to_assoc = function Assoc fields -> Some fields | _ -> None

let rec equal a b =
  match a, b with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | String x, String y -> String.equal x y
  | List xs, List ys -> List.length xs = List.length ys && List.for_all2 equal xs ys
  | Assoc xs, Assoc ys ->
      List.length xs = List.length ys
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2)
           xs ys
  | (Null | Bool _ | Int _ | Float _ | String _ | List _ | Assoc _), _ -> false

let rec canonicalize = function
  | (Null | Bool _ | Int _ | Float _ | String _) as scalar -> scalar
  | List items -> List (List.map canonicalize items)
  | Assoc fields ->
      let fields = List.map (fun (k, v) -> k, canonicalize v) fields in
      Assoc (List.sort (fun (k1, _) (k2, _) -> String.compare k1 k2) fields)

let equal_canonical a b = equal (canonicalize a) (canonicalize b)

let rec compare a b =
  let rank = function
    | Null -> 0
    | Bool _ -> 1
    | Int _ -> 2
    | Float _ -> 3
    | String _ -> 4
    | List _ -> 5
    | Assoc _ -> 6
  in
  match a, b with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | String x, String y -> String.compare x y
  | List xs, List ys -> compare_lists xs ys
  | Assoc xs, Assoc ys ->
      compare_lists
        (List.concat_map (fun (k, v) -> [ String k; v ]) xs)
        (List.concat_map (fun (k, v) -> [ String k; v ]) ys)
  | _ -> Int.compare (rank a) (rank b)

and compare_lists xs ys =
  match xs, ys with
  | [], [] -> 0
  | [], _ :: _ -> -1
  | _ :: _, [] -> 1
  | x :: xs', y :: ys' ->
      let c = compare x y in
      if c <> 0 then c else compare_lists xs' ys'

(* Serialization.  Floats use %.17g trimmed so that round-tripping
   through the parser is lossless. *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  (* JSON has no nan/inf literals; emit null so the output always
     re-parses (consumers read a missing measurement, not a syntax
     error). *)
  if not (Float.is_finite f) then "null"
  else if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.1f" f
  else
    let short = Printf.sprintf "%.12g" f in
    if float_of_string short = f then short else Printf.sprintf "%.17g" f

let rec write_compact buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool true -> Buffer.add_string buf "true"
  | Bool false -> Buffer.add_string buf "false"
  | Int n -> Buffer.add_string buf (string_of_int n)
  | Float f -> Buffer.add_string buf (float_repr f)
  | String s -> escape_string buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write_compact buf item)
        items;
      Buffer.add_char buf ']'
  | Assoc fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          write_compact buf v)
        fields;
      Buffer.add_char buf '}'

let to_compact_string json =
  let buf = Buffer.create 256 in
  write_compact buf json;
  Buffer.contents buf

let rec write_pretty buf indent = function
  | (Null | Bool _ | Int _ | Float _ | String _) as scalar -> write_compact buf scalar
  | List [] -> Buffer.add_string buf "[]"
  | Assoc [] -> Buffer.add_string buf "{}"
  | List items ->
      let pad = String.make (indent + 2) ' ' in
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad;
          write_pretty buf (indent + 2) item)
        items;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make indent ' ');
      Buffer.add_char buf ']'
  | Assoc fields ->
      let pad = String.make (indent + 2) ' ' in
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad;
          escape_string buf k;
          Buffer.add_string buf ": ";
          write_pretty buf (indent + 2) v)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make indent ' ');
      Buffer.add_char buf '}'

let to_pretty_string json =
  let buf = Buffer.create 256 in
  write_pretty buf 0 json;
  Buffer.contents buf

let pp ppf json = Format.pp_print_string ppf (to_pretty_string json)
let hash json = Digest.to_hex (Digest.string (to_compact_string (canonicalize json)))
let size_bytes json = String.length (to_compact_string json)

let rec depth = function
  | Null | Bool _ | Int _ | Float _ | String _ -> 0
  | List items -> 1 + List.fold_left (fun acc item -> max acc (depth item)) 0 items
  | Assoc fields -> 1 + List.fold_left (fun acc (_, v) -> max acc (depth v)) 0 fields

let rec fold_scalars f acc = function
  | (Null | Bool _ | Int _ | Float _ | String _) as scalar -> f acc scalar
  | List items -> List.fold_left (fold_scalars f) acc items
  | Assoc fields -> List.fold_left (fun acc (_, v) -> fold_scalars f acc v) acc fields
