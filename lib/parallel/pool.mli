(** A small domain pool: deterministic fan-out of independent work
    items across OCaml 5 domains.

    Items are claimed with one atomic fetch-and-add and every result
    lands in its item's output slot, so output order equals input
    order regardless of completion order — the property the parallel
    landing path relies on to stay bit-identical to its sequential
    counterpart.  A 1-domain pool (or a 1-item call) runs inline on
    the caller's domain with no spawns. *)

type t

val create : ?domains:int -> unit -> t
(** [domains] defaults to 1 and is clamped to [>= 1]. *)

val domains : t -> int

val recommended_domains : unit -> int
(** [Domain.recommended_domain_count ()] — what [--jobs 0] resolves
    to at the CLI. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array t f items]: apply [f] to every item on the pool.
    Results are in input order.  If any [f] raises, remaining items
    are abandoned, all domains are joined, and the first exception
    observed is re-raised on the caller's domain. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list

val map_local :
  t ->
  local:(unit -> 's) ->
  f:('s -> 'a -> 'b) ->
  merge:('s -> unit) ->
  'a array ->
  'b array
(** Like {!map_array}, with worker-local state: each worker calls
    [local ()] once, threads the state through its items, and the
    caller's domain runs [merge] on every worker's state after the
    join (in worker order) — the pattern for per-domain counter
    blocks that merge into shared metrics at the join point.  On an
    exception the states are not merged. *)
