(* A small domain pool for the landing path: deterministic fan-out of
   independent work items across OCaml 5 domains.

   Work distribution is a single atomic next-index counter
   (fetch-and-add), so domains self-balance across items of uneven
   cost without any queue or lock; each result is written into the
   output slot of its item, so the output order is the input order no
   matter which domain finished first or last.  That slot discipline
   is what lets callers (compile levels, verify fan-out, CI checks)
   promise bit-identical output to their sequential paths.

   A pool of [domains = 1] — and any call whose item count is 1 —
   runs entirely inline on the caller's domain: no spawn, no atomics
   beyond the ones already in the code path, which is what keeps the
   1-domain overhead of the parallel landing path within noise of the
   old sequential code.

   Worker-local state ([map_local]) exists for counter blocks: each
   domain accumulates statistics privately and the caller merges them
   after the join, in worker order, so shared counters are only ever
   touched by one domain at a time. *)

type t = { domains : int }

let create ?(domains = 1) () = { domains = max 1 domains }
let domains t = t.domains
let recommended_domains () = Domain.recommended_domain_count ()

let map_local (t : t) ~(local : unit -> 's) ~(f : 's -> 'a -> 'b)
    ~(merge : 's -> unit) (items : 'a array) : 'b array =
  let n = Array.length items in
  if n = 0 then [||]
  else begin
    let workers = min t.domains n in
    if workers <= 1 then begin
      let state = local () in
      let out = Array.map (f state) items in
      merge state;
      out
    end
    else begin
      let out = Array.make n None in
      let next = Atomic.make 0 in
      let failed : exn option Atomic.t = Atomic.make None in
      let worker () =
        let state = local () in
        (try
           let running = ref true in
           while !running do
             let i = Atomic.fetch_and_add next 1 in
             if i >= n || Atomic.get failed <> None then running := false
             else out.(i) <- Some (f state items.(i))
           done
         with exn -> ignore (Atomic.compare_and_set failed None (Some exn)));
        state
      in
      (* The caller's domain is worker 0; only [workers - 1] domains
         are spawned. *)
      let spawned = List.init (workers - 1) (fun _ -> Domain.spawn worker) in
      let states = worker () :: List.map Domain.join spawned in
      (match Atomic.get failed with
      | Some exn -> raise exn
      | None -> ());
      (* Join point: merge worker-local state on the caller's domain,
         in worker order. *)
      List.iter merge states;
      Array.map
        (function Some v -> v | None -> assert false (* every slot filled *))
        out
    end
  end

let map_array t f items =
  map_local t ~local:(fun () -> ()) ~f:(fun () x -> f x) ~merge:ignore items

let map_list t f items = Array.to_list (map_array t f (Array.of_list items))
