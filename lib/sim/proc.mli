(** A crashable simulated process: an owner for scheduled events.

    Components that model a daemon (a tailer, a proxy, a committer)
    schedule their events through a [Proc.t].  {!kill} models
    [kill -9]: every pending owned event is cancelled and any event
    already in flight from an older incarnation fires as a no-op — the
    process does no further work and runs no cleanup, exactly like a
    real SIGKILL mid-commit.  {!restart} begins a new incarnation and
    runs the registered restart hooks (where recovery code — e.g.
    reopening a pack directory — belongs). *)

type t

val spawn : Engine.t -> name:string -> t
(** A new process, initially up (incarnation 1). *)

val name : t -> string
val alive : t -> bool

val incarnation : t -> int
(** Bumped by every {!restart}; 1 initially. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** Like {!Engine.schedule}, but owned: the event is dropped if the
    process was killed, or killed-and-restarted, before it fires
    (incarnation guard).  No-op when the process is down. *)

val every : t -> period:float -> (unit -> unit) -> unit
(** Periodic loop under the same ownership: stops on {!kill}, does
    {e not} auto-resume on {!restart} (restart hooks decide what the
    new incarnation runs). *)

val kill : t -> unit
(** [kill -9]: cancels all pending owned events, runs no cleanup.
    No-op if already down. *)

val on_restart : t -> (unit -> unit) -> unit
(** Registers a recovery hook; hooks run on every {!restart} in
    registration order. *)

val restart : t -> unit
(** New incarnation: marks the process up and runs the restart hooks.
    @raise Invalid_argument if the process is still up. *)

val kills : t -> int
val restarts : t -> int
