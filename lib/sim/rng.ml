type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 seed }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = create (bits64 t)
let copy t = { state = t.state }

let int t bound =
  assert (bound > 0);
  (* Shift by 2 so the value fits OCaml's 63-bit int (stays >= 0). *)
  let raw = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  raw mod bound

let int_in t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

(* Uniform in [0,1) using the top 53 bits. *)
let unit_float t =
  let raw = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  raw /. 9007199254740992.0

let float t bound = unit_float t *. bound
let bool t = Int64.logand (bits64 t) 1L = 1L
let bernoulli t p = unit_float t < p

let exponential t mean =
  let u = unit_float t in
  -.mean *. log (1.0 -. u)

let normal t ~mu ~sigma =
  let u1 = 1.0 -. unit_float t in
  let u2 = unit_float t in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let lognormal t ~mu ~sigma = exp (normal t ~mu ~sigma)

let pareto t ~alpha ~x_min =
  let u = 1.0 -. unit_float t in
  x_min /. (u ** (1.0 /. alpha))

let binomial t ~n ~p =
  assert (n >= 0);
  if n = 0 || p <= 0.0 then 0
  else if p >= 1.0 then n
  else if n <= 64 then begin
    (* Exact: n Bernoulli draws. *)
    let k = ref 0 in
    for _ = 1 to n do
      if bernoulli t p then incr k
    done;
    !k
  end
  else begin
    (* Normal approximation, adequate for cohort-scale n; one draw
       instead of n keeps million-member aggregates O(1). *)
    let mu = float_of_int n *. p in
    let sigma = sqrt (float_of_int n *. p *. (1.0 -. p)) in
    let k = int_of_float (Float.round (normal t ~mu ~sigma)) in
    Stdlib.max 0 (Stdlib.min n k)
  end

let choice t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let hash_to_unit key =
  let digest = Digest.string key in
  (* Take 6 bytes (48 bits) of the MD5 digest for a uniform float. *)
  let acc = ref 0 in
  for i = 0 to 5 do
    acc := (!acc * 256) + Char.code digest.[i]
  done;
  float_of_int !acc /. 281474976710656.0

module Zipf = struct
  type dist = { cdf : float array }

  let make ~n ~s =
    assert (n > 0);
    let weights = Array.init n (fun i -> 1.0 /. (float_of_int (i + 1) ** s)) in
    let total = Array.fold_left ( +. ) 0.0 weights in
    let cdf = Array.make n 0.0 in
    let acc = ref 0.0 in
    Array.iteri
      (fun i w ->
        acc := !acc +. (w /. total);
        cdf.(i) <- !acc)
      weights;
    cdf.(n - 1) <- 1.0;
    { cdf }

  let draw t { cdf } =
    let u = unit_float t in
    (* Smallest index whose cumulative mass covers u. *)
    let rec search lo hi =
      if lo >= hi then lo + 1
      else
        let mid = (lo + hi) / 2 in
        if cdf.(mid) < u then search (mid + 1) hi else search lo mid
    in
    search 0 (Array.length cdf - 1)
end
