(** Discrete-event simulation engine.

    Time is a [float] in seconds.  Events are closures; they may
    schedule further events.  The engine is single-threaded and
    deterministic: ties at the same instant fire in scheduling order,
    and all randomness comes from the engine's seeded {!Rng.t}. *)

type t

type handle
(** Identifies a scheduled event so it can be cancelled.  Liveness is
    tracked per handle: a handle is live from {!schedule}/{!at} until
    it fires or is cancelled, and late cancels are exact no-ops. *)

val create : ?seed:int64 -> ?granularity:float -> ?slots:int -> unit -> t
(** Default seed is 42.  [granularity] and [slots] shape the internal
    {!Wheel}: slot width in seconds (default 1ms) and slots per
    revolution (default 8192).  The defaults suit both micro-tests and
    fleet-scale runs; widen [granularity] for very sparse decade-long
    simulations. *)

val now : t -> float
(** Current simulated time in seconds. *)

val rng : t -> Rng.t
(** The engine's generator; components needing an independent stream
    should [Rng.split] it at setup time. *)

val schedule : t -> delay:float -> (unit -> unit) -> handle
(** [schedule t ~delay f] runs [f] at [now t +. max 0 delay]. *)

val at : t -> time:float -> (unit -> unit) -> handle
(** [at t ~time f] runs [f] at absolute [time] (clamped to now). *)

val cancel : t -> handle -> unit
(** Cancelling an already-fired or cancelled event is a no-op. *)

val pending : t -> int
(** Number of live (not cancelled, not fired) events. *)

val step : t -> bool
(** Fires the next event; [false] when the queue is empty. *)

val run : ?until:float -> t -> unit
(** Runs until the queue drains or simulated time exceeds [until].
    Events scheduled beyond [until] remain pending. *)

val run_for : t -> float -> unit
(** [run_for t d] is [run ~until:(now t +. d) t], then advances the
    clock to exactly [now + d] even if the queue drained earlier. *)

val events_processed : t -> int
(** Total events fired since {!create} — the numerator of the
    fleet-bench events/sec headline. *)
