module Histogram = struct
  type t = {
    mutable data : float array;
    mutable len : int;
    mutable sorted : bool;
  }

  let create () = { data = Array.make 16 0.0; len = 0; sorted = true }

  let add t v =
    if t.len = Array.length t.data then begin
      let fresh = Array.make (2 * t.len) 0.0 in
      Array.blit t.data 0 fresh 0 t.len;
      t.data <- fresh
    end;
    t.data.(t.len) <- v;
    t.len <- t.len + 1;
    t.sorted <- false

  let count t = t.len

  let ensure_sorted t =
    if not t.sorted then begin
      let sub = Array.sub t.data 0 t.len in
      Array.sort Float.compare sub;
      Array.blit sub 0 t.data 0 t.len;
      t.sorted <- true
    end

  let sum t =
    let acc = ref 0.0 in
    for i = 0 to t.len - 1 do
      acc := !acc +. t.data.(i)
    done;
    !acc

  let mean t = if t.len = 0 then nan else sum t /. float_of_int t.len

  let min t =
    ensure_sorted t;
    if t.len = 0 then nan else t.data.(0)

  let max t =
    ensure_sorted t;
    if t.len = 0 then nan else t.data.(t.len - 1)

  let quantile t q =
    ensure_sorted t;
    if t.len = 0 then nan
    else if t.len = 1 then t.data.(0)
    else begin
      let q = Float.min 1.0 (Float.max 0.0 q) in
      let pos = q *. float_of_int (t.len - 1) in
      let lo = int_of_float (Float.floor pos) in
      let hi = Stdlib.min (lo + 1) (t.len - 1) in
      let frac = pos -. float_of_int lo in
      t.data.(lo) +. (frac *. (t.data.(hi) -. t.data.(lo)))
    end

  let cdf_at t v =
    ensure_sorted t;
    if t.len = 0 then nan
    else begin
      (* Count of samples <= v by binary search for the upper bound. *)
      let rec search lo hi =
        if lo >= hi then lo
        else
          let mid = (lo + hi) / 2 in
          if t.data.(mid) <= v then search (mid + 1) hi else search lo mid
      in
      float_of_int (search 0 t.len) /. float_of_int t.len
    end

  let stddev t =
    if t.len < 2 then 0.0
    else begin
      let m = mean t in
      let sum = ref 0.0 in
      for i = 0 to t.len - 1 do
        let d = t.data.(i) -. m in
        sum := !sum +. (d *. d)
      done;
      sqrt (!sum /. float_of_int (t.len - 1))
    end

  let values t =
    ensure_sorted t;
    Array.sub t.data 0 t.len
end

module Counter = struct
  type t = { mutable n : int }

  let create () = { n = 0 }
  let incr ?(by = 1) t = t.n <- t.n + by
  let value t = t.n
  let reset t = t.n <- 0
end

module Series = struct
  type bucket = { mutable sum : float; mutable n : int }

  type t = { width : float; table : (int, bucket) Hashtbl.t }

  let create ~bucket_width =
    assert (bucket_width > 0.0);
    { width = bucket_width; table = Hashtbl.create 64 }

  let add t ~time v =
    let idx = int_of_float (Float.floor (time /. t.width)) in
    match Hashtbl.find_opt t.table idx with
    | Some b ->
        b.sum <- b.sum +. v;
        b.n <- b.n + 1
    | None -> Hashtbl.replace t.table idx { sum = v; n = 1 }

  let sorted_range t =
    let keys = Hashtbl.fold (fun k _ acc -> k :: acc) t.table [] in
    match List.sort Int.compare keys with
    | [] -> None
    | first :: _ as keys -> Some (first, List.fold_left Stdlib.max first keys)

  let dense t extract =
    match sorted_range t with
    | None -> [||]
    | Some (lo, hi) ->
        Array.init (hi - lo + 1) (fun i ->
            let idx = lo + i in
            let start = float_of_int idx *. t.width in
            match Hashtbl.find_opt t.table idx with
            | Some b -> start, extract b
            | None -> start, extract { sum = 0.0; n = 0 })

  let buckets t = dense t (fun b -> b.sum)

  let counts t =
    match sorted_range t with
    | None -> [||]
    | Some (lo, hi) ->
        Array.init (hi - lo + 1) (fun i ->
            let idx = lo + i in
            let start = float_of_int idx *. t.width in
            match Hashtbl.find_opt t.table idx with
            | Some b -> start, b.n
            | None -> start, 0)

  let means t =
    let all = dense t (fun b -> if b.n = 0 then nan else b.sum /. float_of_int b.n) in
    Array.of_list
      (List.filter (fun (_, m) -> not (Float.is_nan m)) (Array.to_list all))
end
