module Histogram = struct
  (* Streaming moments (count, sum, sum of squares, min, max) are
     exact for every sample ever added; order statistics come from a
     bounded reservoir (Vitter's Algorithm R).  Below [cap] samples
     the reservoir holds everything, so small histograms — all the
     existing tests and legacy benches — keep exact quantiles, while
     million-sample fleet runs stay at O(cap) memory. *)
  type t = {
    mutable data : float array;
    mutable len : int;
    mutable sorted : bool;
    cap : int;
    mutable total : int; (* samples ever added (weights included) *)
    mutable tsum : float;
    mutable tsumsq : float;
    mutable tmin : float;
    mutable tmax : float;
    rng : Rng.t;
  }

  let default_cap = 65536

  let create ?(cap = default_cap) () =
    {
      data = Array.make 16 0.0;
      len = 0;
      sorted = true;
      cap = Stdlib.max 1 cap;
      total = 0;
      tsum = 0.0;
      tsumsq = 0.0;
      tmin = infinity;
      tmax = neg_infinity;
      rng = Rng.create 0x9e3779b97f4a7c15L;
    }

  let append t v =
    if t.len = Array.length t.data then begin
      let fresh = Array.make (Stdlib.min t.cap (2 * t.len)) 0.0 in
      Array.blit t.data 0 fresh 0 t.len;
      t.data <- fresh
    end;
    t.data.(t.len) <- v;
    t.len <- t.len + 1

  let note t v =
    t.tsum <- t.tsum +. v;
    t.tsumsq <- t.tsumsq +. (v *. v);
    if v < t.tmin then t.tmin <- v;
    if v > t.tmax then t.tmax <- v

  let add t v =
    t.total <- t.total + 1;
    note t v;
    if t.len < t.cap then append t v
    else begin
      (* Algorithm R: keep with probability cap/total. *)
      let j = Rng.int t.rng t.total in
      if j < t.cap then t.data.(j) <- v
    end;
    t.sorted <- false

  let add_weighted t v ~weight =
    if weight > 0 then begin
      let prev = t.total in
      t.total <- t.total + weight;
      t.tsum <- t.tsum +. (v *. float_of_int weight);
      t.tsumsq <- t.tsumsq +. (v *. v *. float_of_int weight);
      if v < t.tmin then t.tmin <- v;
      if v > t.tmax then t.tmax <- v;
      (* Fill the reservoir exactly while it has room... *)
      let direct = Stdlib.min weight (t.cap - t.len) in
      for _ = 1 to direct do
        append t v
      done;
      let rest = weight - direct in
      if rest > 0 then begin
        (* ...then approximate the remaining [rest] sequential
           Algorithm R offers by their expected number of reservoir
           insertions, cap * ln((prev+weight)/(prev+direct)), rounding
           stochastically.  All inserted copies are the same value, so
           collapsing the per-offer loop is exact in expectation. *)
        let before = float_of_int (Stdlib.max t.cap (prev + direct)) in
        let after = float_of_int (prev + weight) in
        let expected = float_of_int t.cap *. log (after /. before) in
        let n = int_of_float expected in
        let frac = expected -. float_of_int n in
        let n = if Rng.float t.rng 1.0 < frac then n + 1 else n in
        for _ = 1 to Stdlib.min n t.cap do
          t.data.(Rng.int t.rng t.cap) <- v
        done
      end;
      t.sorted <- false
    end

  let count t = t.total
  let sample_size t = t.len

  let ensure_sorted t =
    if not t.sorted then begin
      let sub = Array.sub t.data 0 t.len in
      Array.sort Float.compare sub;
      Array.blit sub 0 t.data 0 t.len;
      t.sorted <- true
    end

  let sum t = t.tsum
  let mean t = if t.total = 0 then nan else t.tsum /. float_of_int t.total
  let min t = if t.total = 0 then nan else t.tmin
  let max t = if t.total = 0 then nan else t.tmax

  let quantile t q =
    ensure_sorted t;
    if t.len = 0 then nan
    else if t.len = 1 then t.data.(0)
    else begin
      let q = Float.min 1.0 (Float.max 0.0 q) in
      let pos = q *. float_of_int (t.len - 1) in
      let lo = int_of_float (Float.floor pos) in
      let hi = Stdlib.min (lo + 1) (t.len - 1) in
      let frac = pos -. float_of_int lo in
      t.data.(lo) +. (frac *. (t.data.(hi) -. t.data.(lo)))
    end

  let cdf_at t v =
    ensure_sorted t;
    if t.len = 0 then nan
    else begin
      (* Count of samples <= v by binary search for the upper bound. *)
      let rec search lo hi =
        if lo >= hi then lo
        else
          let mid = (lo + hi) / 2 in
          if t.data.(mid) <= v then search (mid + 1) hi else search lo mid
      in
      float_of_int (search 0 t.len) /. float_of_int t.len
    end

  let stddev t =
    if t.total < 2 then 0.0
    else begin
      let n = float_of_int t.total in
      let m = t.tsum /. n in
      let var = (t.tsumsq -. (n *. m *. m)) /. (n -. 1.0) in
      sqrt (Float.max 0.0 var)
    end

  let values t =
    ensure_sorted t;
    Array.sub t.data 0 t.len
end

module Counter = struct
  type t = { mutable n : int }

  let create () = { n = 0 }
  let incr ?(by = 1) t = t.n <- t.n + by
  let value t = t.n
  let reset t = t.n <- 0
end

module Series = struct
  type bucket = { mutable sum : float; mutable n : int }

  type t = { width : float; table : (int, bucket) Hashtbl.t }

  let create ~bucket_width =
    assert (bucket_width > 0.0);
    { width = bucket_width; table = Hashtbl.create 64 }

  let add t ~time v =
    let idx = int_of_float (Float.floor (time /. t.width)) in
    match Hashtbl.find_opt t.table idx with
    | Some b ->
        b.sum <- b.sum +. v;
        b.n <- b.n + 1
    | None -> Hashtbl.replace t.table idx { sum = v; n = 1 }

  let sorted_range t =
    let keys = Hashtbl.fold (fun k _ acc -> k :: acc) t.table [] in
    match List.sort Int.compare keys with
    | [] -> None
    | first :: _ as keys -> Some (first, List.fold_left Stdlib.max first keys)

  let dense t extract =
    match sorted_range t with
    | None -> [||]
    | Some (lo, hi) ->
        Array.init (hi - lo + 1) (fun i ->
            let idx = lo + i in
            let start = float_of_int idx *. t.width in
            match Hashtbl.find_opt t.table idx with
            | Some b -> start, extract b
            | None -> start, extract { sum = 0.0; n = 0 })

  let buckets t = dense t (fun b -> b.sum)

  let counts t =
    match sorted_range t with
    | None -> [||]
    | Some (lo, hi) ->
        Array.init (hi - lo + 1) (fun i ->
            let idx = lo + i in
            let start = float_of_int idx *. t.width in
            match Hashtbl.find_opt t.table idx with
            | Some b -> start, b.n
            | None -> start, 0)

  let means t =
    let all = dense t (fun b -> if b.n = 0 then nan else b.sum /. float_of_int b.n) in
    Array.of_list
      (List.filter (fun (_, m) -> not (Float.is_nan m)) (Array.to_list all))
end
