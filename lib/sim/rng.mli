(** Deterministic pseudo-random numbers (splitmix64).

    Every experiment in the repository is reproducible from a seed, so
    no code uses [Random] from the stdlib; simulation components draw
    from an explicit generator, and independent components can be given
    independent streams via {!split}. *)

type t

val create : int64 -> t
(** [create seed] makes a fresh generator. *)

val split : t -> t
(** [split t] derives an independent generator; [t] advances. *)

val copy : t -> t

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be > 0. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is true with probability [p]. *)

val exponential : t -> float -> float
(** [exponential t mean] draws from Exp with the given mean. *)

val lognormal : t -> mu:float -> sigma:float -> float
val pareto : t -> alpha:float -> x_min:float -> float

val normal : t -> mu:float -> sigma:float -> float
(** Box-Muller. *)

val binomial : t -> n:int -> p:float -> int
(** Number of successes among [n] independent trials of probability
    [p].  Exact (n Bernoulli draws) for [n <= 64]; clamped normal
    approximation above — one draw per cohort instead of one per
    member. *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates. *)

val hash_to_unit : string -> float
(** [hash_to_unit key] deterministically maps a string to [\[0,1)].
    This is the paper's [rand(user_id)]: Gatekeeper sampling must be
    sticky per user, independent of any generator state. *)

module Zipf : sig
  type dist

  val make : n:int -> s:float -> dist
  (** Zipf distribution over ranks [1..n] with exponent [s]
      (probability of rank k proportional to 1/k^s). *)

  val draw : t -> dist -> int
  (** Draw a rank in [\[1, n\]] by inverse-CDF binary search. *)
end
