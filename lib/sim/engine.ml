type handle = {
  hf : unit -> unit;
  mutable hlive : bool; (* false once fired or cancelled *)
}

type t = {
  wheel : handle Wheel.t;
  mutable clock : float;
  mutable next_seq : int;
  mutable live : int;
  mutable processed : int;
  random : Rng.t;
}

let create ?(seed = 42L) ?granularity ?slots () =
  {
    wheel = Wheel.create ?granularity ?slots ();
    clock = 0.0;
    next_seq = 0;
    live = 0;
    processed = 0;
    random = Rng.create seed;
  }

let now t = t.clock
let rng t = t.random
let events_processed t = t.processed

let at t ~time f =
  let time = Float.max time t.clock in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.live <- t.live + 1;
  let h = { hf = f; hlive = true } in
  Wheel.add t.wheel ~time ~seq h;
  h

let schedule t ~delay f = at t ~time:(t.clock +. Float.max 0.0 delay) f

let cancel t handle =
  (* Per-handle liveness: cancelling a fired or already-cancelled
     event is a no-op, and nothing is leaked. *)
  if handle.hlive then begin
    handle.hlive <- false;
    t.live <- t.live - 1
  end

let pending t = t.live

(* Pops the next live entry due at or before [limit]; dead entries
   (cancelled handles still in the wheel) are discarded on the way. *)
let rec next_due t ~limit =
  match Wheel.pop_due t.wheel ~limit with
  | None -> None
  | Some (time, _, h) -> if h.hlive then Some (time, h) else next_due t ~limit

let fire t time h =
  t.clock <- time;
  t.live <- t.live - 1;
  t.processed <- t.processed + 1;
  h.hlive <- false;
  h.hf ()

let step t =
  match next_due t ~limit:infinity with
  | None -> false
  | Some (time, h) ->
      fire t time h;
      true

let run ?until t =
  match until with
  | None -> while step t do () done
  | Some limit ->
      let continue = ref true in
      while !continue do
        match next_due t ~limit with
        | None -> continue := false
        | Some (time, h) -> fire t time h
      done

let run_for t d =
  let target = t.clock +. d in
  run ~until:target t;
  t.clock <- Float.max t.clock target
