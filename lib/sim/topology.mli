(** Fleet model: regions contain clusters contain server nodes.

    Matches the paper's deployment shape (multiple geographic regions,
    each data center made of clusters of thousands of servers).  Nodes
    carry an up/down flag used for failure injection; components must
    tolerate any node being down. *)

type node_id = int

type node = {
  id : node_id;
  region : int;
  cluster : int;
  mutable up : bool;
}

type t

val create : regions:int -> clusters_per_region:int -> nodes_per_cluster:int -> t

val node_count : t -> int
val region_count : t -> int
val cluster_count : t -> int
(** Total clusters across all regions. *)

val nodes_per_cluster : t -> int

val cluster_base : t -> region:int -> cluster:int -> node_id
(** First node id of a cluster; ids within a cluster are contiguous,
    so cohorts can address members as [base + offset] without
    allocating node arrays. *)

val node : t -> node_id -> node
(** @raise Invalid_argument on an out-of-range id. *)

val nodes : t -> node array
(** All nodes; do not mutate the array itself. *)

val nodes_in_cluster : t -> region:int -> cluster:int -> node array
val nodes_in_region : t -> region:int -> node array

val cluster_of : t -> node_id -> int * int
(** [(region, cluster)] of a node. *)

val same_cluster : t -> node_id -> node_id -> bool
val same_region : t -> node_id -> node_id -> bool

val crash : t -> node_id -> unit
val restart : t -> node_id -> unit
val is_up : t -> node_id -> bool

val random_node : Rng.t -> t -> node_id
val random_up_node : Rng.t -> t -> node_id option
