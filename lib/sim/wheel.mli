(** Hierarchical timer wheel keyed by [(time, seq)].

    The fleet-scale replacement for a single binary heap on the engine
    hot path: near-future insertions are O(1) slot appends, far-future
    ones go to an overflow heap and are re-slotted as the wheel turns,
    and a per-window mini-heap restores exact total order.  Ties at
    the same [time] pop in ascending [seq], i.e. FIFO when [seq] is a
    scheduling counter. *)

type 'a t

val create : ?granularity:float -> ?slots:int -> unit -> 'a t
(** [granularity] is the slot width in seconds (default 1ms) and
    [slots] the slots per revolution (default 8192), giving a ~8.2s
    near-future window by default. *)

val size : 'a t -> int
(** Entries currently queued (slots + window heap + overflow). *)

val is_empty : 'a t -> bool

val add : 'a t -> time:float -> seq:int -> 'a -> unit
(** [time] must be >= the time of the last popped entry (the engine's
    clock monotonicity guarantees this). *)

val pop_due : 'a t -> limit:float -> (float * int * 'a) option
(** Removes and returns the globally minimal entry if its time is
    [<= limit]; [None] otherwise (nothing is consumed, though the
    window may rotate forward up to [limit]). *)

val next_time : 'a t -> float option
(** Earliest pending deadline without consuming it. *)
