type params = {
  same_cluster_lat : float;
  same_region_lat : float;
  cross_region_lat : float;
  same_cluster_bw : float;
  same_region_bw : float;
  cross_region_bw : float;
  jitter : float;
  drop_prob : float;
}

let default_params =
  {
    same_cluster_lat = 0.0005;
    same_region_lat = 0.002;
    cross_region_lat = 0.075;
    same_cluster_bw = 1.0e9;
    same_region_bw = 4.0e8;
    cross_region_bw = 5.0e7;
    jitter = 0.1;
    drop_prob = 0.0;
  }

let lossy p ~drop_prob = { p with drop_prob }

type t = {
  params : params;
  engine : Engine.t;
  topology : Topology.t;
  rng : Rng.t;
  mutable bytes : int;
  mutable messages : int;
  mutable xregion_bytes : int;
  mutable xcluster_bytes : int;
  egress : int array; (* indexed by node id, pre-sized from the topology *)
  mutable tracer : Cm_trace.Tracer.t option;
}

let create ?(params = default_params) engine topology =
  { params; engine; topology; rng = Rng.split (Engine.rng engine);
    bytes = 0; messages = 0; xregion_bytes = 0; xcluster_bytes = 0;
    egress = Array.make (Topology.node_count topology) 0; tracer = None }

let engine t = t.engine
let topology t = t.topology
let set_tracer t tr = t.tracer <- Some tr
let tracer t = t.tracer

type locality = Same_cluster | Same_region | Cross_region

let locality t ~src ~dst =
  if Topology.same_cluster t.topology src dst then Same_cluster
  else if Topology.same_region t.topology src dst then Same_region
  else Cross_region

let transfer_time t ~src ~dst ~bytes =
  let lat, bw =
    match locality t ~src ~dst with
    | Same_cluster -> t.params.same_cluster_lat, t.params.same_cluster_bw
    | Same_region -> t.params.same_region_lat, t.params.same_region_bw
    | Cross_region -> t.params.cross_region_lat, t.params.cross_region_bw
  in
  let base = lat +. (float_of_int bytes /. bw) in
  let noise = 1.0 +. (t.params.jitter *. ((2.0 *. Rng.float t.rng 1.0) -. 1.0)) in
  base *. Float.max 0.01 noise

let account ?(copies = 1) t ~src ~dst ~bytes =
  let total = bytes * copies in
  t.bytes <- t.bytes + total;
  t.messages <- t.messages + copies;
  t.egress.(src) <- t.egress.(src) + total;
  (match locality t ~src ~dst with
  | Same_cluster -> ()
  | Same_region -> t.xcluster_bytes <- t.xcluster_bytes + total
  | Cross_region ->
      t.xcluster_bytes <- t.xcluster_bytes + total;
      t.xregion_bytes <- t.xregion_bytes + total)

let deliver t ~dst callback () = if Topology.is_up t.topology dst then callback ()

(* Trace spans are recorded out of band: no RNG draws, no bytes, no
   scheduled events — an instrumented run is observationally identical
   to an uninstrumented one (checked by a property test). *)
let record_hops t ~hop ~src ~dst ~bytes ~delay ~dropped ctx ctxs =
  match t.tracer with
  | None -> ()
  | Some tr ->
      let t0 = Engine.now t.engine in
      let t1 = if dropped then t0 else t0 +. delay in
      let tags = if dropped then [ ("dropped", "true") ] else [] in
      let record c =
        if Cm_trace.Tracer.is_traced c then
          ignore (Cm_trace.Tracer.span tr c ~name:hop ~src ~dst ~bytes ~tags ~t0 ~t1 ())
      in
      (match ctx with Some c -> record c | None -> ());
      List.iter record ctxs

(* [copies] models a cohort: the same message sent to [copies]
   statistically identical receivers.  Bytes, message and egress
   counters scale by [copies]; drop and jitter are drawn once and one
   delivery event fires (the receivers share fate by construction —
   per-member divergence is what cohort expansion is for). *)
let send ?(hop = "net.send") ?ctx ?(ctxs = []) ?(copies = 1) t ~src ~dst ~bytes
    callback =
  account ~copies t ~src ~dst ~bytes;
  if not (Rng.bernoulli t.rng t.params.drop_prob) then begin
    let delay = transfer_time t ~src ~dst ~bytes in
    record_hops t ~hop ~src ~dst ~bytes ~delay ~dropped:false ctx ctxs;
    ignore (Engine.schedule t.engine ~delay (deliver t ~dst callback))
  end
  else record_hops t ~hop ~src ~dst ~bytes ~delay:0. ~dropped:true ctx ctxs

let send_reliable ?(hop = "net.send") ?ctx ?(ctxs = []) ?(copies = 1) t ~src
    ~dst ~bytes callback =
  account ~copies t ~src ~dst ~bytes;
  let delay = transfer_time t ~src ~dst ~bytes in
  record_hops t ~hop ~src ~dst ~bytes ~delay ~dropped:false ctx ctxs;
  ignore (Engine.schedule t.engine ~delay (deliver t ~dst callback))

let bytes_sent t = t.bytes
let messages_sent t = t.messages
let cross_region_bytes t = t.xregion_bytes
let cross_cluster_bytes t = t.xcluster_bytes

let egress_bytes t node = t.egress.(node)

let reset_counters t =
  t.bytes <- 0;
  t.messages <- 0;
  t.xregion_bytes <- 0;
  t.xcluster_bytes <- 0;
  Array.fill t.egress 0 (Array.length t.egress) 0
