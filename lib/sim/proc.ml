type t = {
  eng : Engine.t;
  pname : string;
  mutable up : bool;
  mutable inc : int;
  mutable owned : Engine.handle list;
  mutable hooks : (unit -> unit) list; (* reversed: newest first *)
  mutable nkills : int;
  mutable nrestarts : int;
}

let spawn eng ~name =
  {
    eng;
    pname = name;
    up = true;
    inc = 1;
    owned = [];
    hooks = [];
    nkills = 0;
    nrestarts = 0;
  }

let name t = t.pname
let alive t = t.up
let incarnation t = t.inc
let kills t = t.nkills
let restarts t = t.nrestarts

(* The incarnation guard is the real kill mechanism: cancelling the
   owned handles is just hygiene (it keeps the engine queue small), so
   an event the engine already dequeued still dies here. *)
let guarded t f =
  let inc = t.inc in
  fun () -> if t.up && t.inc = inc then f ()

let schedule t ~delay f =
  if t.up then
    t.owned <- Engine.schedule t.eng ~delay (guarded t f) :: t.owned

let every t ~period f =
  if period <= 0.0 then invalid_arg "Proc.every: period must be positive";
  let rec tick () =
    f ();
    schedule t ~delay:period tick
  in
  schedule t ~delay:period tick

let kill t =
  if t.up then begin
    t.up <- false;
    t.nkills <- t.nkills + 1;
    List.iter (Engine.cancel t.eng) t.owned;
    t.owned <- []
  end

let on_restart t hook = t.hooks <- hook :: t.hooks

let restart t =
  if t.up then invalid_arg ("Proc.restart: " ^ t.pname ^ " is still up");
  t.inc <- t.inc + 1;
  t.up <- true;
  t.nrestarts <- t.nrestarts + 1;
  List.iter (fun hook -> hook ()) (List.rev t.hooks)
