(** Measurement helpers shared by the experiments: histograms with
    quantiles, counters, and fixed-width time series. *)

module Histogram : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val sum : t -> float
  val mean : t -> float
  val min : t -> float
  val max : t -> float

  val quantile : t -> float -> float
  (** [quantile t q] with [q] in [\[0,1\]]; linear interpolation.
      Returns [nan] when empty. *)

  val cdf_at : t -> float -> float
  (** Fraction of samples <= the given value. *)

  val stddev : t -> float
  val values : t -> float array
  (** Sorted copy of the samples. *)
end

module Counter : sig
  type t

  val create : unit -> t
  val incr : ?by:int -> t -> unit
  val value : t -> int
  val reset : t -> unit
end

module Series : sig
  (** Accumulates samples into fixed-width time buckets — used to plot
      "per hour" / "per day" curves like the paper's Figures 11-14. *)

  type t

  val create : bucket_width:float -> t
  val add : t -> time:float -> float -> unit

  val buckets : t -> (float * float) array
  (** [(bucket_start_time, sum)] in time order; empty buckets between
      populated ones are included with sum 0. *)

  val counts : t -> (float * int) array
  (** [(bucket_start_time, sample_count)]. *)

  val means : t -> (float * float) array
  (** [(bucket_start_time, mean)] for non-empty buckets. *)
end
