(** Measurement helpers shared by the experiments: histograms with
    quantiles, counters, and fixed-width time series. *)

module Histogram : sig
  (** Count, sum, mean, min, max and stddev are streamed exactly over
      every sample; order statistics (quantile, cdf) are computed over
      a bounded uniform reservoir (Vitter's Algorithm R, capacity
      [cap]).  Below [cap] samples the reservoir holds everything and
      quantiles are exact; beyond it memory stays O(cap) no matter how
      many million samples a fleet run adds. *)

  type t

  val create : ?cap:int -> unit -> t
  (** [cap] is the reservoir capacity, default 65536. *)

  val add : t -> float -> unit

  val add_weighted : t -> float -> weight:int -> unit
  (** Adds [weight] copies of the value in O(reservoir insertions)
      rather than O(weight) — how cohorts record one observation for
      thousands of aggregated members. *)

  val count : t -> int
  (** Samples ever added, weights included. *)

  val sample_size : t -> int
  (** Samples currently held in the reservoir (= [count] until the
      reservoir saturates). *)

  val sum : t -> float
  val mean : t -> float
  val min : t -> float
  val max : t -> float

  val quantile : t -> float -> float
  (** [quantile t q] with [q] in [\[0,1\]]; linear interpolation over
      the reservoir.  Returns [nan] when empty. *)

  val cdf_at : t -> float -> float
  (** Fraction of reservoir samples <= the given value. *)

  val stddev : t -> float
  val values : t -> float array
  (** Sorted copy of the reservoir sample. *)
end

module Counter : sig
  type t

  val create : unit -> t
  val incr : ?by:int -> t -> unit
  val value : t -> int
  val reset : t -> unit
end

module Series : sig
  (** Accumulates samples into fixed-width time buckets — used to plot
      "per hour" / "per day" curves like the paper's Figures 11-14. *)

  type t

  val create : bucket_width:float -> t
  val add : t -> time:float -> float -> unit

  val buckets : t -> (float * float) array
  (** [(bucket_start_time, sum)] in time order; empty buckets between
      populated ones are included with sum 0. *)

  val counts : t -> (float * int) array
  (** [(bucket_start_time, sample_count)]. *)

  val means : t -> (float * float) array
  (** [(bucket_start_time, mean)] for non-empty buckets. *)
end
