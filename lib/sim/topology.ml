type node_id = int

type node = {
  id : node_id;
  region : int;
  cluster : int;
  mutable up : bool;
}

type t = {
  all : node array;
  regions : int;
  clusters_per_region : int;
  nodes_per_cluster : int;
}

let create ~regions ~clusters_per_region ~nodes_per_cluster =
  assert (regions > 0 && clusters_per_region > 0 && nodes_per_cluster > 0);
  let total = regions * clusters_per_region * nodes_per_cluster in
  let all =
    Array.init total (fun id ->
        let per_region = clusters_per_region * nodes_per_cluster in
        let region = id / per_region in
        let cluster = id mod per_region / nodes_per_cluster in
        { id; region; cluster; up = true })
  in
  { all; regions; clusters_per_region; nodes_per_cluster }

let node_count t = Array.length t.all
let region_count t = t.regions
let cluster_count t = t.regions * t.clusters_per_region
let nodes_per_cluster t = t.nodes_per_cluster

let cluster_base t ~region ~cluster =
  (region * t.clusters_per_region * t.nodes_per_cluster)
  + (cluster * t.nodes_per_cluster)

let node t id =
  if id < 0 || id >= Array.length t.all then invalid_arg "Topology.node: bad id";
  t.all.(id)

let nodes t = t.all

let nodes_in_cluster t ~region ~cluster =
  let per_region = t.clusters_per_region * t.nodes_per_cluster in
  let start = (region * per_region) + (cluster * t.nodes_per_cluster) in
  Array.sub t.all start t.nodes_per_cluster

let nodes_in_region t ~region =
  let per_region = t.clusters_per_region * t.nodes_per_cluster in
  Array.sub t.all (region * per_region) per_region

let cluster_of t id =
  let n = node t id in
  n.region, n.cluster

let same_cluster t a b =
  let na = node t a and nb = node t b in
  na.region = nb.region && na.cluster = nb.cluster

let same_region t a b = (node t a).region = (node t b).region
let crash t id = (node t id).up <- false
let restart t id = (node t id).up <- true
let is_up t id = (node t id).up
let random_node rng t = Rng.int rng (Array.length t.all)

let random_up_node rng t =
  (* Rejection sampling with a bounded number of tries, then a scan. *)
  let total = Array.length t.all in
  let rec try_sample attempts =
    if attempts = 0 then None
    else
      let id = Rng.int rng total in
      if t.all.(id).up then Some id else try_sample (attempts - 1)
  in
  match try_sample 16 with
  | Some id -> Some id
  | None ->
      let found = ref None in
      Array.iter (fun n -> if n.up && !found = None then found := Some n.id) t.all;
      !found
