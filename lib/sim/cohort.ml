(* A cohort stands for [size] statistically identical simulation
   actors — same cluster, same watch set, same parameters — driven by
   one representative event stream.  The aggregate weight starts at
   [size] and shrinks as members are expanded into individual actors
   (because a trace context or an injected fault targets them); the
   protocol layers consume the weight via [Net.send ~copies] and
   [Metrics.Histogram.add_weighted].

   Per-member scratch state lives in one flat [Float.Array] rather
   than per-member closures: a million members cost 8 bytes each plus
   whatever the representative itself allocates. *)

type t = {
  size : int;
  rep : Topology.node_id;
  member_node : int -> Topology.node_id;
  expanded : (int, unit) Hashtbl.t;
  mutable aggregated : int;
  mutable resize_hooks : (int -> unit) list;
  mutable expand_hooks : (int -> Topology.node_id -> unit) list;
  state : Float.Array.t;
}

let create ?member_node ~size ~node () =
  assert (size > 0);
  let member_node = match member_node with Some f -> f | None -> fun _ -> node in
  {
    size;
    rep = node;
    member_node;
    expanded = Hashtbl.create 8;
    aggregated = size;
    resize_hooks = [];
    expand_hooks = [];
    state = Float.Array.make size 0.0;
  }

let of_cluster topo ~region ~cluster ~skip_head ~skip_tail =
  let per = Topology.nodes_per_cluster topo in
  let size = per - skip_head - skip_tail in
  assert (size > 0);
  let base = Topology.cluster_base topo ~region ~cluster in
  create
    ~member_node:(fun i -> base + skip_head + i)
    ~size ~node:(base + skip_head) ()

let size t = t.size
let node t = t.rep
let weight t = t.aggregated
let member_node t i = t.member_node i
let expanded_count t = Hashtbl.length t.expanded
let is_expanded t i = Hashtbl.mem t.expanded i

let on_resize t f = t.resize_hooks <- f :: t.resize_hooks
let on_expand t f = t.expand_hooks <- f :: t.expand_hooks

let expand t i =
  if i < 0 || i >= t.size then invalid_arg "Cohort.expand: bad member index";
  if Hashtbl.mem t.expanded i then false
  else begin
    Hashtbl.replace t.expanded i ();
    t.aggregated <- t.aggregated - 1;
    List.iter (fun f -> f t.aggregated) t.resize_hooks;
    List.iter (fun f -> f i (t.member_node i)) t.expand_hooks;
    true
  end

let get_state t i = Float.Array.get t.state i
let set_state t i v = Float.Array.set t.state i v

let record t hist v = Metrics.Histogram.add_weighted hist v ~weight:t.aggregated
