(** Network model: latency + bandwidth between fleet nodes.

    Transfer time for a message of [bytes] between two nodes is
    [latency(src, dst) + bytes / bandwidth(src, dst)], with
    multiplicative jitter.  Latencies are classed by locality
    (same cluster / same region / cross region), matching the
    high-bandwidth data-center network the paper assumes for the Zeus
    distribution tree, and the scarcer cross-region links that motivate
    PackageVessel's locality-aware peer selection. *)

type params = {
  same_cluster_lat : float;  (** seconds, e.g. 0.0005 *)
  same_region_lat : float;   (** seconds, e.g. 0.002 *)
  cross_region_lat : float;  (** seconds, e.g. 0.075 *)
  same_cluster_bw : float;   (** bytes/second *)
  same_region_bw : float;
  cross_region_bw : float;
  jitter : float;            (** relative, e.g. 0.1 for +-10% *)
  drop_prob : float;         (** probability a message is lost *)
}

val default_params : params
(** Data-center defaults: 0.5ms / 2ms / 75ms latency, 1 GB/s in
    cluster, 400 MB/s in region, 50 MB/s cross region, 10% jitter,
    no loss. *)

val lossy : params -> drop_prob:float -> params

type t

val create : ?params:params -> Engine.t -> Topology.t -> t

val engine : t -> Engine.t
val topology : t -> Topology.t

val set_tracer : t -> Cm_trace.Tracer.t -> unit
(** Attach a span tracer.  Every protocol built on this net (Zeus,
    PackageVessel, the pipeline) discovers the tracer here, so one
    attachment traces the whole system.  Off by default. *)

val tracer : t -> Cm_trace.Tracer.t option

val transfer_time : t -> src:Topology.node_id -> dst:Topology.node_id -> bytes:int -> float
(** Sampled duration for one message; includes jitter. *)

val send :
  ?hop:string ->
  ?ctx:Cm_trace.Tracer.ctx ->
  ?ctxs:Cm_trace.Tracer.ctx list ->
  ?copies:int ->
  t ->
  src:Topology.node_id ->
  dst:Topology.node_id ->
  bytes:int ->
  (unit -> unit) ->
  unit
(** Delivers the callback after the sampled transfer time, unless the
    message is dropped or [dst] is down at delivery time.  The
    callback runs in the destination's context.

    [copies] (default 1) models a cohort of statistically identical
    receivers: byte, message and egress accounting scale by [copies]
    while drop and jitter are drawn once and a single delivery event
    fires — the aggregation that makes 100k-server runs tractable.

    When a tracer is attached, a span named [hop] is recorded for
    [ctx] and for each context in [ctxs] (a batched message carries
    the contexts of every traced change it coalesces); dropped
    messages record a zero-length span tagged [dropped=true].
    Tracing never changes timing, RNG draws or byte accounting. *)

val send_reliable :
  ?hop:string ->
  ?ctx:Cm_trace.Tracer.ctx ->
  ?ctxs:Cm_trace.Tracer.ctx list ->
  ?copies:int ->
  t ->
  src:Topology.node_id ->
  dst:Topology.node_id ->
  bytes:int ->
  (unit -> unit) ->
  unit
(** Like {!send} but never dropped by the loss model (still skipped if
    the destination is down: crashed nodes receive nothing). *)

val bytes_sent : t -> int
(** Total bytes handed to the network so far. *)

val messages_sent : t -> int

val cross_region_bytes : t -> int
(** Bytes that crossed a region boundary; the metric the P2P locality
    ablation reports. *)

val cross_cluster_bytes : t -> int

val egress_bytes : t -> Topology.node_id -> int
(** Bytes sent with the given node as source — e.g. the Zeus leader's
    fan-out egress, which the two-level relay tree is meant to bound. *)

val reset_counters : t -> unit
