(* Hierarchical timer wheel, the fleet-scale event queue.

   One revolution of [nslots] slots of width [granularity] seconds
   covers the near future; events landing inside the window are
   appended to their slot vector in O(1).  Events due before the
   current slot boundary live in a small binary heap ([active]) that
   restores exact (time, seq) order; events beyond the horizon wait in
   a second heap ([overflow]) and are re-slotted as the wheel turns.
   An occupancy bitmap lets the wheel skip runs of empty slots in
   O(words) rather than O(slots), and when the wheel is completely
   empty the window jumps straight to the next overflow deadline, so
   quiet stretches of simulated time cost nothing. *)

type 'a slot = { mutable sdata : (float * int * 'a) array; mutable slen : int }

type 'a t = {
  g : float; (* slot width, seconds *)
  nslots : int;
  slots : 'a slot array;
  occ : int array; (* bitmap, [bits_per_word] slots per word *)
  mutable start : float; (* lower bound of the active window *)
  mutable cur : int; (* slot index whose window is [start, start+g) *)
  mutable nslotted : int;
  active : 'a Heap.t; (* due in the active window, exact order *)
  overflow : 'a Heap.t; (* beyond the horizon *)
  mutable size : int;
}

let bits_per_word = 32

let create ?(granularity = 0.001) ?(slots = 8192) () =
  let nslots = max 2 slots in
  {
    g = granularity;
    nslots;
    slots = Array.init nslots (fun _ -> { sdata = [||]; slen = 0 });
    occ = Array.make (((nslots - 1) / bits_per_word) + 1) 0;
    start = 0.0;
    cur = 0;
    nslotted = 0;
    active = Heap.create ();
    overflow = Heap.create ();
    size = 0;
  }

let size t = t.size
let is_empty t = t.size = 0

let set_occ t i =
  t.occ.(i / bits_per_word) <- t.occ.(i / bits_per_word) lor (1 lsl (i mod bits_per_word))

let clear_occ t i =
  t.occ.(i / bits_per_word) <- t.occ.(i / bits_per_word) land lnot (1 lsl (i mod bits_per_word))

let slot_push s v =
  let cap = Array.length s.sdata in
  if s.slen >= cap then begin
    let fresh = Array.make (max 8 (cap * 2)) v in
    Array.blit s.sdata 0 fresh 0 s.slen;
    s.sdata <- fresh
  end;
  s.sdata.(s.slen) <- v;
  s.slen <- s.slen + 1

let horizon t = t.start +. (t.g *. float_of_int t.nslots)

(* Places an entry without touching [size]; used by both [add] and the
   overflow refill.  Truncation in the slot computation can only place
   an entry one slot early, never late, and the active heap re-sorts
   anything dumped out of a slot, so order is preserved. *)
let place t ~time ~seq payload =
  if time < t.start +. t.g then Heap.push t.active ~time ~seq payload
  else if time >= horizon t then Heap.push t.overflow ~time ~seq payload
  else begin
    let k = int_of_float ((time -. t.start) /. t.g) in
    let k = if k < 1 then 1 else if k > t.nslots - 1 then t.nslots - 1 else k in
    let idx = (t.cur + k) mod t.nslots in
    slot_push t.slots.(idx) (time, seq, payload);
    set_occ t idx;
    t.nslotted <- t.nslotted + 1
  end

let add t ~time ~seq payload =
  t.size <- t.size + 1;
  place t ~time ~seq payload

(* Pulls every overflow entry that now fits inside the window. *)
let refill_overflow t =
  let h = horizon t in
  let continue = ref true in
  while !continue do
    match Heap.peek t.overflow with
    | Some (time, _, _) when time < h -> (
        match Heap.pop t.overflow with
        | Some (time, seq, p) -> place t ~time ~seq p
        | None -> continue := false)
    | _ -> continue := false
  done

(* Distance (in slots, 1..nslots-1) to the next occupied slot after
   [cur]; None when every other slot is empty. *)
let next_occupied t =
  if t.nslotted = 0 then None
  else begin
    let found = ref None in
    let d = ref 1 in
    while !found = None && !d < t.nslots do
      let i = (t.cur + !d) mod t.nslots in
      if t.occ.(i / bits_per_word) = 0 then
        (* Whole word empty: skip to the next word boundary, without
           crossing the wheel's wrap point (the first word must be
           re-checked after wrapping). *)
        let skip =
          min (bits_per_word - (i mod bits_per_word)) (t.nslots - i)
        in
        d := !d + skip
      else begin
        if t.occ.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0 then
          found := Some !d
        else incr d
      end
    done;
    !found
  end

(* Advances the window by [d] slots (the d-1 intermediate slots are
   known empty), dumping the newly-current slot into the active heap. *)
let skip_to t d =
  t.start <- t.start +. (float_of_int d *. t.g);
  t.cur <- (t.cur + d) mod t.nslots;
  let s = t.slots.(t.cur) in
  if s.slen > 0 then begin
    for i = 0 to s.slen - 1 do
      let time, seq, p = s.sdata.(i) in
      Heap.push t.active ~time ~seq p
    done;
    t.nslotted <- t.nslotted - s.slen;
    s.slen <- 0;
    clear_occ t t.cur
  end;
  refill_overflow t

(* Jumps the (completely empty) wheel so that [time] falls inside the
   active window — the quiet-period fast path. *)
let jump t time =
  if time >= t.start +. t.g then begin
    let steps = Float.of_int (int_of_float ((time -. t.start) /. t.g)) in
    t.start <- t.start +. (steps *. t.g)
  end;
  refill_overflow t

let pop_active t =
  match Heap.pop t.active with
  | Some _ as r ->
      t.size <- t.size - 1;
      r
  | None -> None

(* Next entry in global (time, seq) order, provided its time is
   [<= limit]; [None] otherwise (nothing is consumed then). *)
let rec pop_due t ~limit =
  match Heap.peek t.active with
  | Some (time, _, _) when time < t.start +. t.g ->
      (* Anything slotted or overflowed is >= start+g, so this is the
         global minimum. *)
      if time <= limit then pop_active t else None
  | active_peek -> (
      match next_occupied t with
      | Some d ->
          let target = t.start +. (float_of_int d *. t.g) in
          if target <= limit then begin
            skip_to t d;
            pop_due t ~limit
          end
          else begin
            (* The next slot is beyond [limit]; only a straggler in the
               active heap (>= start+g from float truncation) can still
               be due, and it precedes every slotted entry. *)
            match active_peek with
            | Some (time, _, _) when time <= limit -> pop_active t
            | _ -> None
          end
      | None -> (
          match active_peek with
          | Some (time, _, _) -> if time <= limit then pop_active t else None
          | None -> (
              match Heap.peek t.overflow with
              | None -> None
              | Some (time, _, _) ->
                  if time > limit then None
                  else begin
                    jump t time;
                    pop_due t ~limit
                  end)))

(* Earliest pending deadline, or None; does not consume. *)
let next_time t =
  let best = ref infinity in
  (match Heap.peek t.active with Some (time, _, _) -> best := time | None -> ());
  if t.nslotted > 0 then begin
    match next_occupied t with
    | Some d ->
        (* Slot lower bound; the true minimum inside the slot is >= it,
           which is enough for scheduling decisions. *)
        let lo = t.start +. (float_of_int d *. t.g) in
        if lo < !best then begin
          (* Resolve exactly: scan the slot. *)
          let s = t.slots.((t.cur + d) mod t.nslots) in
          for i = 0 to s.slen - 1 do
            let time, _, _ = s.sdata.(i) in
            if time < !best then best := time
          done
        end
    | None -> ()
  end;
  (match Heap.peek t.overflow with
  | Some (time, _, _) -> if time < !best then best := time
  | None -> ());
  if !best = infinity then None else Some !best
