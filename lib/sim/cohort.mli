(** Cohorts: one event stream standing for thousands of statistically
    identical subscribers.

    The fleet-scale benches can't afford an event per proxy per update
    at 100k servers; they don't need one either, because servers of
    the same cluster with the same watch set and parameters are
    statistically interchangeable.  A cohort keeps one {e
    representative} actor (a real proxy / device / swarm peer on
    [node]) and an integer {e weight} — how many members it currently
    stands for.  Protocol layers thread the weight through
    [Net.send ~copies] for exact byte/message accounting and
    [Metrics.Histogram.add_weighted] for percentiles.

    {b Expansion} is lazy and one-way: when a trace context or an
    injected fault targets a specific member, {!expand} splits it off
    — the aggregate weight drops by one, [on_resize] hooks let the
    owner shrink the representative's [copies] factor, and [on_expand]
    hooks create the individual actor (real proxy, real device) on the
    member's node.  Everything else stays aggregated.

    The cohort ≡ individually-expanded equivalence (byte totals exact,
    delivery counts exact, latency percentiles within tolerance) is
    pinned by a QCheck property in [test/test_sim.ml]. *)

type t

val create :
  ?member_node:(int -> Topology.node_id) ->
  size:int ->
  node:Topology.node_id ->
  unit ->
  t
(** A cohort of [size] members represented by an actor on [node].
    [member_node] maps a member index ([0..size-1]) to the node the
    member would individually run on (defaults to every member on
    [node]). *)

val of_cluster :
  Topology.t -> region:int -> cluster:int -> skip_head:int -> skip_tail:int -> t
(** The common fleet shape: one cohort per cluster covering the
    cluster's nodes minus [skip_head] at the front (observers) and
    [skip_tail] at the back (ensemble members).  The representative is
    the first covered node and member [i] maps to [base + skip_head +
    i]. *)

val size : t -> int
(** Total members, expanded or not. *)

val weight : t -> int
(** Members the representative currently stands for
    ([size - expanded_count]). *)

val node : t -> Topology.node_id
(** The representative's node. *)

val member_node : t -> int -> Topology.node_id
val expanded_count : t -> int
val is_expanded : t -> int -> bool

val expand : t -> int -> bool
(** Splits member [i] off the aggregate; [false] if already expanded.
    Fires [on_resize] (with the new weight) then [on_expand] (with the
    member index and node). *)

val on_resize : t -> (int -> unit) -> unit
val on_expand : t -> (int -> Topology.node_id -> unit) -> unit

(** {1 Flat per-member state}

    One [Float.Array] slot per member — scratch state (last-seen
    version, next deadline, ...) without per-member closures. *)

val get_state : t -> int -> float
val set_state : t -> int -> float -> unit

val record : t -> Metrics.Histogram.t -> float -> unit
(** [record t hist v] adds [v] with the cohort's current weight —
    one call per representative observation. *)
