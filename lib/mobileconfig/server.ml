module Json = Cm_json.Value
module Engine = Cm_sim.Engine

type response =
  | Not_modified
  | Payload of (string * Json.t) list

type t = {
  engine : Engine.t;
  mutable trans : Translation.t;
  resolver : Translation.resolver;
  rng : Cm_sim.Rng.t;
  mutable push_handlers : (int * (cls:string -> unit)) list;
  mutable next_handler : int;
  mutable nsyncs : int;
  mutable nnotmod : int;
  is_stateful : bool;
  (* (session, class) -> hash of the last payload sent *)
  session_hashes : (int * string, string) Hashtbl.t;
  mutable next_session : int;
}

let create ?(stateful = false) engine ~translation ~resolver =
  {
    engine;
    trans = translation;
    resolver;
    rng = Cm_sim.Rng.split (Engine.rng engine);
    push_handlers = [];
    next_handler = 0;
    nsyncs = 0;
    nnotmod = 0;
    is_stateful = stateful;
    session_hashes = Hashtbl.create 64;
    next_session = 0;
  }

let stateful t = t.is_stateful

let new_session t =
  let id = t.next_session in
  t.next_session <- id + 1;
  id

let set_translation t translation = t.trans <- translation
let translation t = t.trans

let payload_hash fields =
  Json.hash (Json.Assoc fields)

let default_json field =
  match field.Cm_thrift.Schema.fdefault with
  | Some v -> Some (Cm_thrift.Codec.encode v)
  | None -> (
      (* Zero values per base type so getters always have something. *)
      match field.Cm_thrift.Schema.fty with
      | Cm_thrift.Schema.Bool -> Some (Json.Bool false)
      | Cm_thrift.Schema.I32 | Cm_thrift.Schema.I64 -> Some (Json.Int 0)
      | Cm_thrift.Schema.Double -> Some (Json.Float 0.0)
      | Cm_thrift.Schema.Str -> Some (Json.String "")
      | Cm_thrift.Schema.List _ -> Some (Json.List [])
      | Cm_thrift.Schema.Map _ -> Some (Json.Assoc [])
      | Cm_thrift.Schema.Named _ -> None)

let sync ?(copies = 1) t ~session ~user ~cls ~client_schema ~values_hash =
  t.nsyncs <- t.nsyncs + copies;
  let values_hash =
    match session with
    | Some id when t.is_stateful -> Hashtbl.find_opt t.session_hashes (id, cls)
    | Some _ | None -> values_hash
  in
  match Cm_thrift.Schema.find_struct client_schema cls with
  | None -> Payload []
  | Some strct ->
      let materialized = Translation.materialize t.trans t.resolver ~cls user in
      (* Trim to the client's schema version and fill defaults. *)
      let fields =
        List.filter_map
          (fun field ->
            let fname = field.Cm_thrift.Schema.fname in
            match List.assoc_opt fname materialized with
            | Some v -> Some (fname, v)
            | None -> (
                match default_json field with
                | Some v -> Some (fname, v)
                | None -> None))
          strct.Cm_thrift.Schema.fields
      in
      let hash = payload_hash fields in
      (match session with
      | Some id when t.is_stateful -> Hashtbl.replace t.session_hashes (id, cls) hash
      | Some _ | None -> ());
      if values_hash = Some hash then begin
        t.nnotmod <- t.nnotmod + copies;
        Not_modified
      end
      else Payload fields

let syncs_served t = t.nsyncs
let not_modified_served t = t.nnotmod

let register_push t handler =
  let id = t.next_handler in
  t.next_handler <- id + 1;
  t.push_handlers <- (id, handler) :: t.push_handlers;
  id

let emergency_push ?tracer ?(ctx = Cm_trace.Tracer.none) t ~cls ~loss_prob ~latency =
  (* RNG draws are identical with or without tracing: one bernoulli
     per handler, one latency sample per delivered push. *)
  let now () = Engine.now t.engine in
  List.iteri
    (fun i (_, handler) ->
      if not (Cm_sim.Rng.bernoulli t.rng loss_prob) then begin
        let delay = latency () in
        (match tracer with
        | Some tr ->
            ignore
              (Cm_trace.Tracer.span tr ctx ~name:"mobile.push" ~dst:i
                 ~tags:[ ("class", cls) ]
                 ~t0:(now ()) ~t1:(now () +. delay) ())
        | None -> ());
        ignore (Engine.schedule t.engine ~delay (fun () -> handler ~cls))
      end
      else
        match tracer with
        | Some tr ->
            ignore
              (Cm_trace.Tracer.span tr ctx ~name:"mobile.push" ~dst:i
                 ~tags:[ ("class", cls); ("dropped", "true") ]
                 ~t0:(now ()) ~t1:(now ()) ())
        | None -> ())
    t.push_handlers
