module Json = Cm_json.Value
module Engine = Cm_sim.Engine

type network = {
  latency_mean : float;
  latency_jitter : float;
  loss_prob : float;
  request_bytes : int;
  overhead_bytes : int;
}

let default_network =
  {
    latency_mean = 0.15;
    latency_jitter = 0.5;
    loss_prob = 0.02;
    request_bytes = 160;  (* schema hash + values hash + framing *)
    overhead_bytes = 80;
  }

type t = {
  net : network;
  engine : Engine.t;
  server : Server.t;
  duser : Cm_gatekeeper.User.t;
  cls : string;
  schema : Cm_thrift.Schema.t;
  poll_interval : float;
  dweight : int; (* cohort weight: devices this client stands for *)
  rng : Cm_sim.Rng.t;
  flash : (string, Json.t) Hashtbl.t;  (* survives restarts *)
  mutable values_hash : string option;
  mutable running : bool;
  mutable nattempted : int;
  mutable ncompleted : int;
  mutable nnotmod : int;
  mutable down : int;
  mutable up : int;
  mutable last_sync : float option;
  session : int option;
}

let create ?(network = default_network) ?(weight = 1) engine server ~user ~cls
    ~schema ~poll_interval =
  assert (weight > 0);
  let t =
    {
      net = network;
      engine;
      server;
      duser = user;
      cls;
      schema;
      poll_interval;
      dweight = weight;
      rng = Cm_sim.Rng.split (Engine.rng engine);
      flash = Hashtbl.create 16;
      values_hash = None;
      running = false;
      nattempted = 0;
      ncompleted = 0;
      nnotmod = 0;
      down = 0;
      up = 0;
      last_sync = None;
      session =
        (if Server.stateful server then Some (Server.new_session server) else None);
    }
  in
  t

let one_way t =
  let jitter = 1.0 +. (t.net.latency_jitter *. ((2.0 *. Cm_sim.Rng.float t.rng 1.0) -. 1.0)) in
  Float.max 0.005 (t.net.latency_mean *. jitter)

let apply_payload t fields =
  Hashtbl.reset t.flash;
  List.iter (fun (field, v) -> Hashtbl.replace t.flash field v) fields;
  t.values_hash <- Some (Server.payload_hash fields);
  t.last_sync <- Some (Engine.now t.engine)

let sync_once t =
  t.nattempted <- t.nattempted + t.dweight;
  (* Stateful servers remember our hashes: the request carries only a
     session id instead of two 32-byte hex hashes (footnote 2). *)
  let request_bytes =
    match t.session with
    | Some _ -> max 16 (t.net.request_bytes - 112)
    | None -> t.net.request_bytes
  in
  t.up <- t.up + (t.dweight * request_bytes);
  (* Each represented device loses its round trip independently; for
     weight 1 this is the single Bernoulli draw it always was. *)
  let successes =
    if t.dweight = 1 then
      if Cm_sim.Rng.bernoulli t.rng t.net.loss_prob then 0 else 1
    else Cm_sim.Rng.binomial t.rng ~n:t.dweight ~p:(1.0 -. t.net.loss_prob)
  in
  if successes > 0 then begin
    let rtt = one_way t +. one_way t in
    ignore
      (Engine.schedule t.engine ~delay:rtt (fun () ->
           let response =
             Server.sync ~copies:successes t.server ~session:t.session
               ~user:t.duser ~cls:t.cls ~client_schema:t.schema
               ~values_hash:(match t.session with Some _ -> None | None -> t.values_hash)
           in
           t.ncompleted <- t.ncompleted + successes;
           match response with
           | Server.Not_modified ->
               t.nnotmod <- t.nnotmod + successes;
               t.down <- t.down + (successes * t.net.overhead_bytes);
               t.last_sync <- Some (Engine.now t.engine)
           | Server.Payload fields ->
               t.down <-
                 t.down
                 + (successes
                   * (t.net.overhead_bytes + Json.size_bytes (Json.Assoc fields)));
               apply_payload t fields))
  end

let rec poll_loop t =
  if t.running then
    ignore
      (Engine.schedule t.engine ~delay:t.poll_interval (fun () ->
           if t.running then begin
             sync_once t;
             poll_loop t
           end))

let start t =
  if not t.running then begin
    t.running <- true;
    ignore
      (Server.register_push t.server (fun ~cls ->
           if cls = t.cls && t.running then sync_once t));
    sync_once t;
    poll_loop t
  end

let stop t = t.running <- false
let force_sync t = sync_once t

let get t field = Hashtbl.find_opt t.flash field
let has_value t field = Hashtbl.mem t.flash field

let get_bool t field =
  match get t field with Some (Json.Bool b) -> b | Some _ | None -> false

let get_int t field =
  match get t field with Some (Json.Int n) -> n | Some _ | None -> 0

let get_float t field =
  match get t field with
  | Some v -> ( match Json.to_float v with Some f -> f | None -> 0.0)
  | None -> 0.0

let get_string t field =
  match get t field with Some (Json.String s) -> s | Some _ | None -> ""

let user t = t.duser
let weight t = t.dweight
let syncs_attempted t = t.nattempted
let syncs_completed t = t.ncompleted
let not_modified t = t.nnotmod
let bytes_down t = t.down
let bytes_up t = t.up
let last_sync_time t = t.last_sync
