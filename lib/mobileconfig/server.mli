(** MobileConfig server side: translation servers answering device
    syncs and issuing emergency pushes (§5).

    Sync protocol: the client sends the hash of its config schema and
    the hash of its cached values; the server materializes the
    authoritative payload {e trimmed to the client's schema version}
    and replies "not modified" when the value hashes match — the
    paper's bandwidth-minimization scheme. *)

type response =
  | Not_modified
  | Payload of (string * Cm_json.Value.t) list
      (** full field set under the client's schema, defaults filled *)

type t

val create :
  ?stateful:bool ->
  Cm_sim.Engine.t ->
  translation:Translation.t ->
  resolver:Translation.resolver ->
  t
(** [stateful] (default false) enables the paper's footnote-2 future
    enhancement: the server remembers the hash of the last payload it
    sent to each client session, so sync requests no longer need to
    carry the hashes at all — smaller uplink messages on the mobile
    network. *)

val stateful : t -> bool

val new_session : t -> int
(** Registers a client session (stateful mode); the id is sent once at
    registration and identifies the client's cached state from then
    on. *)

val set_translation : t -> Translation.t -> unit
(** Live remapping (e.g. experiment -> constant migration). *)

val translation : t -> Translation.t

val sync :
  ?copies:int ->
  t ->
  session:int option ->
  user:Cm_gatekeeper.User.t ->
  cls:string ->
  client_schema:Cm_thrift.Schema.t ->
  values_hash:string option ->
  response
(** Fields unknown to the client's schema are dropped; fields the
    client's schema declares but no backend maps get the schema
    default.  The schema must contain a struct named [cls].
    In stateful mode with a [session], the server uses its remembered
    hash for that session instead of [values_hash] (which clients then
    omit from the wire).

    [copies] (default 1) is the cohort weight of the syncing device:
    one materialization answers [copies] statistically identical
    clients and the served counters scale accordingly. *)

val payload_hash : (string * Cm_json.Value.t) list -> string

val syncs_served : t -> int
val not_modified_served : t -> int

(** {1 Emergency push} *)

val register_push : t -> (cls:string -> unit) -> int
(** Registers a device push-notification handler; returns its id. *)

val emergency_push :
  ?tracer:Cm_trace.Tracer.t ->
  ?ctx:Cm_trace.Tracer.ctx ->
  t ->
  cls:string ->
  loss_prob:float ->
  latency:(unit -> float) ->
  unit
(** Sends a push notification to every registered device; each is
    independently lost with [loss_prob] (push notification is
    unreliable — the reason pull remains the backbone).  With
    [tracer]/[ctx] set, each push records a [mobile.push] span
    (dropped ones are zero-length, tagged [dropped=true]). *)
