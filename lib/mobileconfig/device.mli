(** A mobile device running the MobileConfig client library (§5).

    The cross-platform client: a context class with typed getters, a
    flash cache that survives app restarts, an hourly-ish poll loop
    over an unreliable mobile network, and an emergency-push listener.
    Legacy app versions simply carry an older schema; the server trims
    its reply accordingly. *)

type network = {
  latency_mean : float;  (** one-way seconds, e.g. 0.15 *)
  latency_jitter : float;
  loss_prob : float;     (** per round trip *)
  request_bytes : int;   (** sync request incl. both hashes *)
  overhead_bytes : int;  (** response framing / not-modified reply *)
}

val default_network : network

type t

val create :
  ?network:network ->
  ?weight:int ->
  Cm_sim.Engine.t ->
  Server.t ->
  user:Cm_gatekeeper.User.t ->
  cls:string ->
  schema:Cm_thrift.Schema.t ->
  poll_interval:float ->
  t
(** The device registers for emergency pushes automatically.

    [weight] (default 1) makes this client a cohort representative
    for that many statistically identical devices: sync attempts,
    completions and byte counters scale by the weight, per-device
    round-trip loss is drawn binomially, and one materialized server
    response answers every represented device — the aggregation that
    lets a million-device day run as a thousand event streams. *)

val start : t -> unit
(** First sync immediately, then the poll loop. *)

val stop : t -> unit

val force_sync : t -> unit

(** {1 Typed getters (the generated context class)} *)

val get_bool : t -> string -> bool
val get_int : t -> string -> int
val get_float : t -> string -> float
val get_string : t -> string -> string
(** Missing/mistyped fields return zero values — mobile code must
    never crash on config absence. *)

val has_value : t -> string -> bool

(** {1 Introspection} *)

val user : t -> Cm_gatekeeper.User.t
val weight : t -> int
val syncs_attempted : t -> int
val syncs_completed : t -> int
val not_modified : t -> int
val bytes_down : t -> int
val bytes_up : t -> int
val last_sync_time : t -> float option
